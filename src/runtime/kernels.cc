#include "runtime/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "runtime/kernels_avx2.h"
#include "runtime/scratch.h"
#include "util/cpu_features.h"

namespace mvtee::runtime {

using tensor::Shape;
using tensor::Tensor;

std::string_view ConvAlgoName(ConvAlgo algo) {
  switch (algo) {
    case ConvAlgo::kDirect: return "direct";
    case ConvAlgo::kIm2col: return "im2col";
  }
  return "unknown";
}

namespace {

// Dispatch gate for the elementwise AVX2 tier: the binary must carry
// the vector TU and the host/policy must allow SIMD. Evaluated per
// call (SimdEnabled is dynamic under ScopedForceScalar).
bool UseVectorElementwise() {
  return internal::Avx2ElementwiseCompiled() && util::UseAvx2Elementwise();
}

// Window geometry is validated before any output dim is computed: a
// non-positive stride, negative padding or non-positive kernel would
// silently produce garbage shapes (division by zero or negative
// extents), so they abort loudly instead (ISSUE: OutDim accepted
// stride <= 0 without complaint).
int64_t OutDim(int64_t in, int64_t k, int64_t stride, int64_t pad) {
  MVTEE_CHECK(stride > 0);
  MVTEE_CHECK(pad >= 0);
  MVTEE_CHECK(k > 0);
  MVTEE_CHECK(in > 0);
  return (in + 2 * pad - k) / stride + 1;
}

void ConvDirect(const Tensor& input, const Tensor& weight, const float* bias,
                const ConvParams& p, Tensor& out) {
  const int64_t N = input.shape().dim(0), C = input.shape().dim(1),
                H = input.shape().dim(2), W = input.shape().dim(3);
  const int64_t OC = weight.shape().dim(0), CG = weight.shape().dim(1),
                KH = weight.shape().dim(2), KW = weight.shape().dim(3);
  const int64_t OH = out.shape().dim(2), OW = out.shape().dim(3);
  const int64_t oc_per_group = OC / p.groups;

  for (int64_t n = 0; n < N; ++n) {
    for (int64_t oc = 0; oc < OC; ++oc) {
      const int64_t g = oc / oc_per_group;
      const float b = bias ? bias[oc] : 0.0f;
      for (int64_t oh = 0; oh < OH; ++oh) {
        for (int64_t ow = 0; ow < OW; ++ow) {
          float acc = b;
          for (int64_t cg = 0; cg < CG; ++cg) {
            const int64_t c = g * CG + cg;
            for (int64_t kh = 0; kh < KH; ++kh) {
              const int64_t ih = oh * p.stride + kh - p.padding;
              if (ih < 0 || ih >= H) continue;
              for (int64_t kw = 0; kw < KW; ++kw) {
                const int64_t iw = ow * p.stride + kw - p.padding;
                if (iw < 0 || iw >= W) continue;
                acc += input.data()[((n * C + c) * H + ih) * W + iw] *
                       weight.data()[((oc * CG + cg) * KH + kh) * KW + kw];
              }
            }
          }
          out.data()[((n * OC + oc) * OH + oh) * OW + ow] = acc;
        }
      }
    }
  }
}

void ConvIm2col(const Tensor& input, const Tensor& weight, const float* bias,
                const ConvParams& p, GemmBackend gemm, Tensor& out) {
  const int64_t N = input.shape().dim(0), C = input.shape().dim(1),
                H = input.shape().dim(2), W = input.shape().dim(3);
  const int64_t OC = weight.shape().dim(0), CG = weight.shape().dim(1),
                KH = weight.shape().dim(2), KW = weight.shape().dim(3);
  const int64_t OH = out.shape().dim(2), OW = out.shape().dim(3);
  const int64_t oc_per_group = OC / p.groups;
  const int64_t patch = CG * KH * KW;
  const int64_t cols = OH * OW;

  // 1x1/stride-1/no-padding convs (projection layers, SE blocks) have a
  // column matrix that IS the input group block: channels of one group
  // are contiguous, so col[cg][oh*OW+ow] == in_plane[oh*W+ow] exactly.
  // Feed the input to the GEMM directly — the fill and the col scratch
  // vanish, and the GEMM reads identical values, so outputs stay
  // bitwise identical to the filled path.
  const bool identity_cols =
      KH == 1 && KW == 1 && p.stride == 1 && p.padding == 0;

  // Scratch from the buffer pool: steady-state inference recycles these
  // chunks (pool.hits) instead of hitting the heap per call.
  util::PooledBuffer col_buf;
  if (!identity_cols) {
    col_buf = AcquireFloatScratch(static_cast<size_t>(patch * cols));
  }
  util::PooledBuffer result_buf =
      AcquireFloatScratch(static_cast<size_t>(oc_per_group * cols));
  float* col = identity_cols ? nullptr : FloatScratch(col_buf);
  float* result = FloatScratch(result_buf);

  for (int64_t n = 0; n < N; ++n) {
    for (int64_t g = 0; g < p.groups; ++g) {
      const float* cols_matrix;
      if (identity_cols) {
        cols_matrix = input.data() + (n * C + g * CG) * H * W;
      } else {
        // im2col for this (batch, group).
        for (int64_t cg = 0; cg < CG; ++cg) {
          const int64_t c = g * CG + cg;
          const float* in_plane = input.data() + (n * C + c) * H * W;
          for (int64_t kh = 0; kh < KH; ++kh) {
            for (int64_t kw = 0; kw < KW; ++kw) {
              float* col_row = col + ((cg * KH + kh) * KW + kw) * cols;
              for (int64_t oh = 0; oh < OH; ++oh) {
                const int64_t ih = oh * p.stride + kh - p.padding;
                if (ih < 0 || ih >= H) {
                  std::fill(col_row + oh * OW, col_row + (oh + 1) * OW, 0.0f);
                  continue;
                }
                for (int64_t ow = 0; ow < OW; ++ow) {
                  const int64_t iw = ow * p.stride + kw - p.padding;
                  col_row[oh * OW + ow] =
                      (iw < 0 || iw >= W) ? 0.0f : in_plane[ih * W + iw];
                }
              }
            }
          }
        }
        cols_matrix = col;
      }
      // GEMM: weight[g] (oc_per_group x patch) * col (patch x cols).
      const float* w_group = weight.data() + g * oc_per_group * patch;
      Gemm(gemm, w_group, cols_matrix, result, oc_per_group, cols, patch);
      // Scatter into output with bias (vectorized broadcast-add).
      for (int64_t ocg = 0; ocg < oc_per_group; ++ocg) {
        const int64_t oc = g * oc_per_group + ocg;
        float* out_plane = out.data() + (n * OC + oc) * OH * OW;
        const float* res_row = result + ocg * cols;
        if (bias) {
          elementwise::AddScalar(res_row, bias[oc], out_plane, cols);
        } else {
          std::memcpy(out_plane, res_row,
                      static_cast<size_t>(cols) * sizeof(float));
        }
      }
    }
  }
}

template <typename F>
Tensor ElementwiseUnary(const Tensor& x, F f) {
  Tensor out(x.shape());
  const float* in = x.data();
  float* o = out.data();
  for (int64_t i = 0; i < x.num_elements(); ++i) o[i] = f(in[i]);
  return out;
}

}  // namespace

Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor* bias,
              const ConvParams& params, ConvAlgo algo, GemmBackend gemm) {
  MVTEE_CHECK(input.shape().rank() == 4 && weight.shape().rank() == 4);
  MVTEE_CHECK(params.groups > 0);
  MVTEE_CHECK(weight.shape().dim(0) % params.groups == 0);
  MVTEE_CHECK(input.shape().dim(1) ==
              weight.shape().dim(1) * params.groups);
  const int64_t OH = OutDim(input.shape().dim(2), weight.shape().dim(2),
                            params.stride, params.padding);
  const int64_t OW = OutDim(input.shape().dim(3), weight.shape().dim(3),
                            params.stride, params.padding);
  MVTEE_CHECK(OH > 0 && OW > 0);
  Tensor out(
      Shape({input.shape().dim(0), weight.shape().dim(0), OH, OW}));
  const float* b = bias ? bias->data() : nullptr;
  if (algo == ConvAlgo::kDirect) {
    ConvDirect(input, weight, b, params, out);
  } else {
    ConvIm2col(input, weight, b, params, gemm, out);
  }
  return out;
}

Tensor FullyConnected(const Tensor& input, const Tensor& weight,
                      const Tensor* bias, GemmBackend gemm) {
  return FullyConnected(input, weight, bias, gemm, nullptr);
}

Tensor FullyConnected(const Tensor& input, const Tensor& weight,
                      const Tensor* bias, GemmBackend gemm,
                      const PackedGemmB* packed) {
  MVTEE_CHECK(input.shape().rank() == 2 && weight.shape().rank() == 2);
  const int64_t N = input.shape().dim(0), IN = input.shape().dim(1),
                OUT = weight.shape().dim(0);
  MVTEE_CHECK(weight.shape().dim(1) == IN);
  Tensor out(Shape({N, OUT}));
  if (packed != nullptr) {
    // Cached weight: B = W^T is already in the backend's hot-path
    // layout, so the per-call transpose (and any backend-side packing)
    // is skipped entirely. Bitwise identical to the cold path below —
    // packing only relocates values, never reorders accumulation.
    MVTEE_CHECK(packed->backend == gemm);
    MVTEE_CHECK(packed->n == OUT && packed->k == IN);
    GemmPrepacked(input.data(), *packed, out.data(), N);
  } else {
    // Transpose W to [IN, OUT] then GEMM x[N,IN] * wt[IN,OUT]; the
    // transpose scratch comes from the buffer pool.
    util::PooledBuffer wt_buf =
        AcquireFloatScratch(static_cast<size_t>(IN * OUT));
    float* wt = FloatScratch(wt_buf);
    for (int64_t o = 0; o < OUT; ++o) {
      for (int64_t i = 0; i < IN; ++i) {
        wt[i * OUT + o] = weight.data()[o * IN + i];
      }
    }
    Gemm(gemm, input.data(), wt, out.data(), N, OUT, IN);
  }
  if (bias) {
    // Row-wise vector add of the bias (out += b per row).
    for (int64_t n = 0; n < N; ++n) {
      float* out_row = out.data() + n * OUT;
      elementwise::Add(out_row, bias->data(), out_row, OUT);
    }
  }
  return out;
}

Tensor Relu(const Tensor& x) {
  Tensor out(x.shape());
  elementwise::Relu(x.data(), out.data(), x.num_elements());
  return out;
}

Tensor Relu6(const Tensor& x) {
  Tensor out(x.shape());
  elementwise::Relu6(x.data(), out.data(), x.num_elements());
  return out;
}

Tensor Sigmoid(const Tensor& x) {
  return ElementwiseUnary(
      x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

Tensor HardSwish(const Tensor& x) {
  Tensor out(x.shape());
  elementwise::HardSwish(x.data(), out.data(), x.num_elements());
  return out;
}

Tensor Tanh(const Tensor& x) {
  return ElementwiseUnary(x, [](float v) { return std::tanh(v); });
}

namespace {
template <bool kMax>
Tensor Pool(const Tensor& x, int64_t kernel, int64_t stride, int64_t padding) {
  MVTEE_CHECK(x.shape().rank() == 4);
  const int64_t N = x.shape().dim(0), C = x.shape().dim(1),
                H = x.shape().dim(2), W = x.shape().dim(3);
  const int64_t OH = OutDim(H, kernel, stride, padding);
  const int64_t OW = OutDim(W, kernel, stride, padding);
  MVTEE_CHECK(OH > 0 && OW > 0);
  Tensor out(Shape({N, C, OH, OW}));
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t c = 0; c < C; ++c) {
      const float* in_plane = x.data() + (n * C + c) * H * W;
      float* out_plane = out.data() + (n * C + c) * OH * OW;
      for (int64_t oh = 0; oh < OH; ++oh) {
        for (int64_t ow = 0; ow < OW; ++ow) {
          float acc = kMax ? -std::numeric_limits<float>::infinity() : 0.0f;
          for (int64_t kh = 0; kh < kernel; ++kh) {
            const int64_t ih = oh * stride + kh - padding;
            if (ih < 0 || ih >= H) continue;
            for (int64_t kw = 0; kw < kernel; ++kw) {
              const int64_t iw = ow * stride + kw - padding;
              if (iw < 0 || iw >= W) continue;
              const float v = in_plane[ih * W + iw];
              if constexpr (kMax) {
                acc = std::max(acc, v);
              } else {
                acc += v;
              }
            }
          }
          if constexpr (!kMax) {
            acc /= static_cast<float>(kernel * kernel);
          }
          out_plane[oh * OW + ow] = acc;
        }
      }
    }
  }
  return out;
}
}  // namespace

Tensor MaxPool(const Tensor& x, int64_t kernel, int64_t stride,
               int64_t padding) {
  return Pool<true>(x, kernel, stride, padding);
}

Tensor AvgPool(const Tensor& x, int64_t kernel, int64_t stride,
               int64_t padding) {
  return Pool<false>(x, kernel, stride, padding);
}

Tensor GlobalAvgPool(const Tensor& x) {
  MVTEE_CHECK(x.shape().rank() == 4);
  const int64_t N = x.shape().dim(0), C = x.shape().dim(1),
                HW = x.shape().dim(2) * x.shape().dim(3);
  Tensor out(Shape({N, C, 1, 1}));
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t c = 0; c < C; ++c) {
      const float* plane = x.data() + (n * C + c) * HW;
      double acc = 0;
      for (int64_t i = 0; i < HW; ++i) acc += plane[i];
      out.data()[n * C + c] = static_cast<float>(acc / HW);
    }
  }
  return out;
}

Tensor BatchNorm(const Tensor& x, const Tensor& scale, const Tensor& bias,
                 const Tensor& mean, const Tensor& var, float epsilon) {
  MVTEE_CHECK(x.shape().rank() == 4);
  const int64_t N = x.shape().dim(0), C = x.shape().dim(1),
                HW = x.shape().dim(2) * x.shape().dim(3);
  MVTEE_CHECK(scale.num_elements() == C);
  Tensor out(x.shape());
  for (int64_t c = 0; c < C; ++c) {
    const float inv_std = 1.0f / std::sqrt(var.at(c) + epsilon);
    const float a = scale.at(c) * inv_std;
    const float b = bias.at(c) - mean.at(c) * a;
    for (int64_t n = 0; n < N; ++n) {
      const float* in_plane = x.data() + (n * C + c) * HW;
      float* out_plane = out.data() + (n * C + c) * HW;
      for (int64_t i = 0; i < HW; ++i) out_plane[i] = in_plane[i] * a + b;
    }
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  MVTEE_CHECK(a.shape() == b.shape());
  Tensor out(a.shape());
  elementwise::Add(a.data(), b.data(), out.data(), a.num_elements());
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) {
    Tensor out(a.shape());
    for (int64_t i = 0; i < a.num_elements(); ++i) {
      out.data()[i] = a.at(i) * b.at(i);
    }
    return out;
  }
  // Channel broadcast: b is [N,C,1,1].
  MVTEE_CHECK(a.shape().rank() == 4 && b.shape().rank() == 4);
  MVTEE_CHECK(b.shape().dim(2) == 1 && b.shape().dim(3) == 1);
  MVTEE_CHECK(a.shape().dim(0) == b.shape().dim(0) &&
              a.shape().dim(1) == b.shape().dim(1));
  const int64_t N = a.shape().dim(0), C = a.shape().dim(1),
                HW = a.shape().dim(2) * a.shape().dim(3);
  Tensor out(a.shape());
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t c = 0; c < C; ++c) {
      const float s = b.data()[n * C + c];
      const float* in_plane = a.data() + (n * C + c) * HW;
      float* out_plane = out.data() + (n * C + c) * HW;
      for (int64_t i = 0; i < HW; ++i) out_plane[i] = in_plane[i] * s;
    }
  }
  return out;
}

Tensor Concat(const std::vector<const Tensor*>& xs) {
  MVTEE_CHECK(xs.size() >= 2);
  const Shape& first = xs[0]->shape();
  MVTEE_CHECK(first.rank() == 4);
  int64_t channels = 0;
  for (const Tensor* t : xs) channels += t->shape().dim(1);
  const int64_t N = first.dim(0), H = first.dim(2), W = first.dim(3);
  Tensor out(Shape({N, channels, H, W}));
  const int64_t hw = H * W;
  for (int64_t n = 0; n < N; ++n) {
    int64_t c_off = 0;
    for (const Tensor* t : xs) {
      const int64_t tc = t->shape().dim(1);
      MVTEE_CHECK(t->shape().dim(0) == N && t->shape().dim(2) == H &&
                  t->shape().dim(3) == W);
      std::copy(t->data() + n * tc * hw, t->data() + (n + 1) * tc * hw,
                out.data() + (n * channels + c_off) * hw);
      c_off += tc;
    }
  }
  return out;
}

Tensor Flatten(const Tensor& x) {
  MVTEE_CHECK(x.shape().rank() >= 2);
  int64_t rest = 1;
  for (int64_t i = 1; i < x.shape().rank(); ++i) rest *= x.shape().dim(i);
  // Pure reshape: alias the input's storage (views included) instead of
  // copying the element vector.
  return Tensor::Reshape(x, Shape({x.shape().dim(0), rest}));
}

Tensor Softmax(const Tensor& x) {
  MVTEE_CHECK(x.shape().rank() == 2);
  const int64_t N = x.shape().dim(0), D = x.shape().dim(1);
  Tensor out(x.shape());
  for (int64_t n = 0; n < N; ++n) {
    const float* row = x.data() + n * D;
    float* out_row = out.data() + n * D;
    // Max and normalize passes dispatch to the AVX2 tier; the exp and
    // double-precision sum passes stay scalar on purpose — libm's exp
    // has no bitwise-identical vector twin, and dispatch must never
    // change a variant's numeric profile.
    const float max_v = elementwise::MaxReduce(row, D);
    double sum = 0;
    for (int64_t i = 0; i < D; ++i) {
      out_row[i] = std::exp(row[i] - max_v);
      sum += out_row[i];
    }
    const float inv = static_cast<float>(1.0 / sum);
    elementwise::MulScalar(out_row, inv, D);
  }
  return out;
}

Tensor Scale(const Tensor& x, float alpha, float beta) {
  Tensor out(x.shape());
  elementwise::Scale(x.data(), alpha, beta, out.data(), x.num_elements());
  return out;
}

namespace elementwise {

// Scalar fallbacks mirror the vector tier's per-element semantics
// exactly (see kernels_avx2.h); both sides round once per operation,
// so the memcmp parity tests hold for arbitrary inputs.

void Relu(const float* in, float* out, int64_t n) {
  if (UseVectorElementwise()) {
    internal::ReluAvx2(in, out, n);
    return;
  }
  for (int64_t i = 0; i < n; ++i) out[i] = in[i] > 0 ? in[i] : 0.0f;
}

void Relu6(const float* in, float* out, int64_t n) {
  if (UseVectorElementwise()) {
    internal::Relu6Avx2(in, out, n);
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    out[i] = std::min(6.0f, std::max(0.0f, in[i]));
  }
}

void HardSwish(const float* in, float* out, int64_t n) {
  if (UseVectorElementwise()) {
    internal::HardSwishAvx2(in, out, n);
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    out[i] = in[i] * std::min(6.0f, std::max(0.0f, in[i] + 3.0f)) / 6.0f;
  }
}

void Add(const float* a, const float* b, float* out, int64_t n) {
  if (UseVectorElementwise()) {
    internal::AddAvx2(a, b, out, n);
    return;
  }
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void AddScalar(const float* in, float s, float* out, int64_t n) {
  if (UseVectorElementwise()) {
    internal::AddScalarAvx2(in, s, out, n);
    return;
  }
  for (int64_t i = 0; i < n; ++i) out[i] = in[i] + s;
}

void Scale(const float* in, float alpha, float beta, float* out, int64_t n) {
  if (UseVectorElementwise()) {
    internal::ScaleAvx2(in, alpha, beta, out, n);
    return;
  }
  for (int64_t i = 0; i < n; ++i) out[i] = in[i] * alpha + beta;
}

float MaxReduce(const float* x, int64_t n) {
  MVTEE_CHECK(n >= 1);
  if (UseVectorElementwise()) return internal::MaxReduceAvx2(x, n);
  float m = x[0];
  for (int64_t i = 1; i < n; ++i) m = std::max(m, x[i]);
  return m;
}

void MulScalar(float* data, float s, int64_t n) {
  if (UseVectorElementwise()) {
    internal::MulScalarAvx2(data, s, n);
    return;
  }
  for (int64_t i = 0; i < n; ++i) data[i] *= s;
}

}  // namespace elementwise

}  // namespace mvtee::runtime
