// Operator kernels. Each kernel is a pure function Tensor(s) -> Tensor.
//
// Conv offers two algorithms (direct loops vs im2col+GEMM) — another
// diversification axis mirroring different inference-runtime lowerings.
#pragma once

#include "graph/ir.h"
#include "runtime/gemm.h"
#include "tensor/tensor.h"

namespace mvtee::runtime {

enum class ConvAlgo : uint8_t {
  kDirect = 0,   // straightforward 7-deep loop nest
  kIm2col,       // lower to GEMM via column matrix
};

std::string_view ConvAlgoName(ConvAlgo algo);

struct ConvParams {
  int64_t stride = 1;
  int64_t padding = 0;
  int64_t groups = 1;
};

// Aborts (MVTEE_CHECK) unless stride > 0, padding >= 0, groups > 0 and
// the kernel extents yield positive output dims — garbage conv params
// must fail loudly, never compute a garbage shape.
tensor::Tensor Conv2d(const tensor::Tensor& input, const tensor::Tensor& weight,
                      const tensor::Tensor* bias, const ConvParams& params,
                      ConvAlgo algo, GemmBackend gemm);

// y = x W^T + b, x:[N,IN], w:[OUT,IN]. The second overload consumes a
// weight prepacked with PackGemmWeightTransposed (the PackedWeightCache
// hot path): bitwise identical to the first, but the per-call W
// transpose and any backend-side packing are skipped. Pass nullptr to
// fall back to the self-contained path.
tensor::Tensor FullyConnected(const tensor::Tensor& input,
                              const tensor::Tensor& weight,
                              const tensor::Tensor* bias, GemmBackend gemm);
tensor::Tensor FullyConnected(const tensor::Tensor& input,
                              const tensor::Tensor& weight,
                              const tensor::Tensor* bias, GemmBackend gemm,
                              const PackedGemmB* packed);

tensor::Tensor Relu(const tensor::Tensor& x);
tensor::Tensor Relu6(const tensor::Tensor& x);
tensor::Tensor Sigmoid(const tensor::Tensor& x);
tensor::Tensor HardSwish(const tensor::Tensor& x);
tensor::Tensor Tanh(const tensor::Tensor& x);

tensor::Tensor MaxPool(const tensor::Tensor& x, int64_t kernel, int64_t stride,
                       int64_t padding);
tensor::Tensor AvgPool(const tensor::Tensor& x, int64_t kernel, int64_t stride,
                       int64_t padding);
tensor::Tensor GlobalAvgPool(const tensor::Tensor& x);

tensor::Tensor BatchNorm(const tensor::Tensor& x, const tensor::Tensor& scale,
                         const tensor::Tensor& bias,
                         const tensor::Tensor& mean, const tensor::Tensor& var,
                         float epsilon);

tensor::Tensor Add(const tensor::Tensor& a, const tensor::Tensor& b);
// Elementwise mul; rhs may be [N,C,1,1] against lhs [N,C,H,W].
tensor::Tensor Mul(const tensor::Tensor& a, const tensor::Tensor& b);
tensor::Tensor Concat(const std::vector<const tensor::Tensor*>& xs);
tensor::Tensor Flatten(const tensor::Tensor& x);
tensor::Tensor Softmax(const tensor::Tensor& x);
tensor::Tensor Scale(const tensor::Tensor& x, float alpha, float beta);

// Dispatched elementwise primitives shared by the tensor kernels above
// and the executor's in-place activation fast path. Each selects the
// AVX2 tier (kernels_avx2.cc) when util::UseAvx2Elementwise() allows
// and the scalar fallback otherwise; the two are bitwise identical for
// every input, so dispatch never shows up in checkpoint comparisons.
// All tolerate exact aliasing (in == out).
namespace elementwise {
void Relu(const float* in, float* out, int64_t n);
void Relu6(const float* in, float* out, int64_t n);
void HardSwish(const float* in, float* out, int64_t n);
void Add(const float* a, const float* b, float* out, int64_t n);
void AddScalar(const float* in, float s, float* out, int64_t n);
void Scale(const float* in, float alpha, float beta, float* out, int64_t n);
float MaxReduce(const float* x, int64_t n);  // n >= 1
void MulScalar(float* data, float s, int64_t n);
}  // namespace elementwise

}  // namespace mvtee::runtime
