// Operator kernels. Each kernel is a pure function Tensor(s) -> Tensor.
//
// Conv offers two algorithms (direct loops vs im2col+GEMM) — another
// diversification axis mirroring different inference-runtime lowerings.
#pragma once

#include "graph/ir.h"
#include "runtime/gemm.h"
#include "tensor/tensor.h"

namespace mvtee::runtime {

enum class ConvAlgo : uint8_t {
  kDirect = 0,   // straightforward 7-deep loop nest
  kIm2col,       // lower to GEMM via column matrix
};

std::string_view ConvAlgoName(ConvAlgo algo);

struct ConvParams {
  int64_t stride = 1;
  int64_t padding = 0;
  int64_t groups = 1;
};

tensor::Tensor Conv2d(const tensor::Tensor& input, const tensor::Tensor& weight,
                      const tensor::Tensor* bias, const ConvParams& params,
                      ConvAlgo algo, GemmBackend gemm);

// y = x W^T + b, x:[N,IN], w:[OUT,IN].
tensor::Tensor FullyConnected(const tensor::Tensor& input,
                              const tensor::Tensor& weight,
                              const tensor::Tensor* bias, GemmBackend gemm);

tensor::Tensor Relu(const tensor::Tensor& x);
tensor::Tensor Relu6(const tensor::Tensor& x);
tensor::Tensor Sigmoid(const tensor::Tensor& x);
tensor::Tensor HardSwish(const tensor::Tensor& x);
tensor::Tensor Tanh(const tensor::Tensor& x);

tensor::Tensor MaxPool(const tensor::Tensor& x, int64_t kernel, int64_t stride,
                       int64_t padding);
tensor::Tensor AvgPool(const tensor::Tensor& x, int64_t kernel, int64_t stride,
                       int64_t padding);
tensor::Tensor GlobalAvgPool(const tensor::Tensor& x);

tensor::Tensor BatchNorm(const tensor::Tensor& x, const tensor::Tensor& scale,
                         const tensor::Tensor& bias,
                         const tensor::Tensor& mean, const tensor::Tensor& var,
                         float epsilon);

tensor::Tensor Add(const tensor::Tensor& a, const tensor::Tensor& b);
// Elementwise mul; rhs may be [N,C,1,1] against lhs [N,C,H,W].
tensor::Tensor Mul(const tensor::Tensor& a, const tensor::Tensor& b);
tensor::Tensor Concat(const std::vector<const tensor::Tensor*>& xs);
tensor::Tensor Flatten(const tensor::Tensor& x);
tensor::Tensor Softmax(const tensor::Tensor& x);
tensor::Tensor Scale(const tensor::Tensor& x, float alpha, float beta);

}  // namespace mvtee::runtime
