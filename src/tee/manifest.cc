#include "tee/manifest.h"

namespace mvtee::tee {

util::Bytes Manifest::Serialize() const {
  util::Bytes out;
  util::AppendU32(out, 0x4d564d46);  // "MVMF"
  util::AppendLengthPrefixedStr(out, entrypoint);
  util::AppendU32(out, static_cast<uint32_t>(trusted_files.size()));
  for (const auto& [path, digest] : trusted_files) {
    util::AppendLengthPrefixedStr(out, path);
    util::AppendBytes(out, util::ByteSpan(digest.data(), digest.size()));
  }
  auto append_string_set = [&](const std::set<std::string>& s) {
    util::AppendU32(out, static_cast<uint32_t>(s.size()));
    for (const auto& item : s) util::AppendLengthPrefixedStr(out, item);
  };
  append_string_set(encrypted_files);
  append_string_set(allowed_syscalls);
  append_string_set(allowed_env);
  util::AppendU8(out, allow_host_args ? 1 : 0);
  util::AppendU8(out, two_stage_enabled ? 1 : 0);
  util::AppendU8(out, exec_from_encrypted_only ? 1 : 0);
  return out;
}

util::Result<Manifest> Manifest::Deserialize(util::ByteSpan data) {
  util::ByteReader reader(data);
  uint32_t magic;
  if (!reader.ReadU32(magic) || magic != 0x4d564d46) {
    return util::InvalidArgument("bad manifest magic");
  }
  Manifest m;
  uint32_t n;
  if (!reader.ReadLengthPrefixedStr(m.entrypoint) || !reader.ReadU32(n)) {
    return util::InvalidArgument("truncated manifest");
  }
  for (uint32_t i = 0; i < n; ++i) {
    std::string path;
    util::Bytes digest;
    if (!reader.ReadLengthPrefixedStr(path) ||
        !reader.ReadBytes(crypto::kSha256DigestSize, digest)) {
      return util::InvalidArgument("truncated trusted file");
    }
    crypto::Sha256Digest d;
    std::copy(digest.begin(), digest.end(), d.begin());
    m.trusted_files[path] = d;
  }
  auto read_string_set = [&](std::set<std::string>& s) {
    uint32_t count;
    if (!reader.ReadU32(count)) return false;
    for (uint32_t i = 0; i < count; ++i) {
      std::string item;
      if (!reader.ReadLengthPrefixedStr(item)) return false;
      s.insert(std::move(item));
    }
    return true;
  };
  if (!read_string_set(m.encrypted_files) ||
      !read_string_set(m.allowed_syscalls) ||
      !read_string_set(m.allowed_env)) {
    return util::InvalidArgument("truncated manifest sets");
  }
  uint8_t args, two_stage, enc_only;
  if (!reader.ReadU8(args) || !reader.ReadU8(two_stage) ||
      !reader.ReadU8(enc_only)) {
    return util::InvalidArgument("truncated manifest flags");
  }
  m.allow_host_args = args != 0;
  m.two_stage_enabled = two_stage != 0;
  m.exec_from_encrypted_only = enc_only != 0;
  return m;
}

crypto::Sha256Digest Manifest::Hash() const {
  return crypto::Sha256::Hash(Serialize());
}

Manifest MonitorManifest() {
  Manifest m;
  m.entrypoint = "mvtee-monitor";
  m.allowed_syscalls = {"read", "write", "socket", "connect", "accept",
                        "close", "clock_gettime", "futex"};
  return m;
}

Manifest InitVariantManifest() {
  Manifest m;
  m.entrypoint = "mvtee-init-variant";
  m.allowed_syscalls = {"read",  "write", "socket",         "connect",
                        "close", "open",  "clock_gettime",  "futex",
                        "exec",  "pf_install_key",
                        "manifest_install_second_stage"};
  m.two_stage_enabled = true;
  return m;
}

Manifest MainVariantManifest() {
  Manifest m;
  m.entrypoint = "mvtee-variant";
  m.allowed_syscalls = {"read", "write", "socket", "connect",
                        "close", "clock_gettime", "futex"};
  m.exec_from_encrypted_only = true;
  return m;
}

}  // namespace mvtee::tee
