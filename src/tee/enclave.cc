#include "tee/enclave.h"

#include "crypto/rand.h"

namespace mvtee::tee {

std::string_view TeeTypeName(TeeType type) {
  switch (type) {
    case TeeType::kSgx1: return "sgx1";
    case TeeType::kSgx2: return "sgx2";
    case TeeType::kTdx: return "tdx";
  }
  return "unknown";
}

util::Bytes AttestationReport::SignedPortion() const {
  util::Bytes out;
  util::AppendU64(out, enclave_id);
  util::AppendU8(out, static_cast<uint8_t>(tee_type));
  util::AppendBytes(out, util::ByteSpan(measurement.data(), measurement.size()));
  util::AppendBytes(out, util::ByteSpan(report_data.data(), report_data.size()));
  return out;
}

util::Bytes AttestationReport::Serialize() const {
  util::Bytes out = SignedPortion();
  util::AppendBytes(out, util::ByteSpan(mac.data(), mac.size()));
  return out;
}

util::Result<AttestationReport> AttestationReport::Deserialize(
    util::ByteSpan data) {
  util::ByteReader reader(data);
  AttestationReport r;
  uint8_t type;
  util::Bytes measurement, report_data, mac;
  if (!reader.ReadU64(r.enclave_id) || !reader.ReadU8(type) ||
      !reader.ReadBytes(crypto::kSha256DigestSize, measurement) ||
      !reader.ReadBytes(kReportDataSize, report_data) ||
      !reader.ReadBytes(crypto::kSha256DigestSize, mac) || !reader.done()) {
    return util::InvalidArgument("malformed attestation report");
  }
  if (type > static_cast<uint8_t>(TeeType::kTdx)) {
    return util::InvalidArgument("bad tee type");
  }
  r.tee_type = static_cast<TeeType>(type);
  std::copy(measurement.begin(), measurement.end(), r.measurement.begin());
  std::copy(report_data.begin(), report_data.end(), r.report_data.begin());
  std::copy(mac.begin(), mac.end(), r.mac.begin());
  return r;
}

AttestationReport Enclave::CreateReport(
    const std::array<uint8_t, kReportDataSize>& report_data) const {
  AttestationReport report;
  report.enclave_id = id_;
  report.tee_type = tee_type_;
  report.measurement = measurement_;
  report.report_data = report_data;
  report.mac = cpu_->SignReport(report);
  return report;
}

util::Status Enclave::CheckSyscall(const std::string& name) const {
  if (!manifest().SyscallAllowed(name)) {
    return util::PermissionDenied("syscall '" + name +
                                  "' blocked by manifest (stage " +
                                  (stage_ == Stage::kInit ? "init" : "main") +
                                  ")");
  }
  return util::OkStatus();
}

util::Status Enclave::VerifyTrustedFile(const std::string& path,
                                        util::ByteSpan contents) const {
  const Manifest& m = manifest();
  auto it = m.trusted_files.find(path);
  if (it == m.trusted_files.end()) {
    return util::PermissionDenied("file '" + path + "' not in trusted set");
  }
  auto digest = crypto::Sha256::Hash(contents);
  if (!util::ConstantTimeEqual(
          util::ByteSpan(digest.data(), digest.size()),
          util::ByteSpan(it->second.data(), it->second.size()))) {
    return util::DataLoss("trusted file '" + path + "' hash mismatch");
  }
  return util::OkStatus();
}

util::Status Enclave::InstallProtectedFsKey(util::Bytes key) {
  MVTEE_RETURN_IF_ERROR(CheckSyscall("pf_install_key"));
  if (stage_ != Stage::kInit) {
    return util::PermissionDenied(
        "protected-FS key manipulation prohibited after exec()");
  }
  pf_key_ = std::move(key);
  return util::OkStatus();
}

util::Status Enclave::InstallSecondStageManifest(const Manifest& manifest) {
  MVTEE_RETURN_IF_ERROR(CheckSyscall("manifest_install_second_stage"));
  if (!manifest_.two_stage_enabled) {
    return util::FailedPrecondition(
        "two-stage manifests not enabled at boot");
  }
  if (second_stage_locked_ || second_stage_.has_value()) {
    return util::PermissionDenied(
        "second-stage manifest already installed (one-time)");
  }
  if (stage_ != Stage::kInit) {
    return util::PermissionDenied("install interface disabled after exec()");
  }
  second_stage_ = manifest;
  second_stage_locked_ = true;
  return util::OkStatus();
}

util::Status Enclave::Exec() {
  MVTEE_RETURN_IF_ERROR(CheckSyscall("exec"));
  if (stage_ != Stage::kInit) {
    return util::FailedPrecondition("exec(): stage transition is one-way");
  }
  if (manifest_.two_stage_enabled && !second_stage_.has_value()) {
    return util::FailedPrecondition(
        "exec() before second-stage manifest installation");
  }
  // Reset init-stage state "as thoroughly as possible" — everything but
  // the installed protected-FS key, which the TEE OS retains for the
  // encrypted filesystem.
  stage_ = Stage::kMain;
  return util::OkStatus();
}

SimulatedCpu::SimulatedCpu(const Options& options)
    : total_epc_(options.total_epc_pages) {
  if (options.hardware_key_seed != 0) {
    crypto::DeterministicRandom rng(options.hardware_key_seed);
    hardware_key_ = rng.Generate(32);
  } else {
    hardware_key_ = crypto::GlobalRandom().Generate(32);
  }
}

crypto::Sha256Digest SimulatedCpu::SignReport(
    const AttestationReport& report) const {
  return crypto::HmacSha256(hardware_key_, report.SignedPortion());
}

util::Result<std::unique_ptr<Enclave>> SimulatedCpu::LaunchEnclave(
    TeeType type, util::ByteSpan code_identity, const Manifest& manifest,
    size_t epc_pages) {
  std::lock_guard<std::mutex> lock(mu_);
  if (used_epc_ + epc_pages > total_epc_) {
    return util::Unavailable("EPC exhausted: " + std::to_string(used_epc_) +
                             " + " + std::to_string(epc_pages) + " > " +
                             std::to_string(total_epc_));
  }
  // SGX1 models a small integrity-protected EPC: cap per-enclave size.
  if (type == TeeType::kSgx1 && epc_pages > (64u << 10)) {
    return util::InvalidArgument("enclave too large for SGX1 EPC");
  }
  used_epc_ += epc_pages;

  crypto::Sha256 hasher;
  hasher.Update(code_identity);
  auto mhash = manifest.Hash();
  hasher.Update(util::ByteSpan(mhash.data(), mhash.size()));

  return std::unique_ptr<Enclave>(new Enclave(
      next_enclave_id_++, type, hasher.Finish(), manifest, epc_pages, this));
}

void SimulatedCpu::ReleaseEnclave(const Enclave& enclave) {
  std::lock_guard<std::mutex> lock(mu_);
  used_epc_ -= std::min(used_epc_, enclave.epc_pages());
}

util::Status SimulatedCpu::VerifyReport(const AttestationReport& report) const {
  auto expected = SignReport(report);
  if (!util::ConstantTimeEqual(
          util::ByteSpan(expected.data(), expected.size()),
          util::ByteSpan(report.mac.data(), report.mac.size()))) {
    return util::AttestationFailure("report MAC verification failed");
  }
  return util::OkStatus();
}

size_t SimulatedCpu::used_epc_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_epc_;
}

}  // namespace mvtee::tee
