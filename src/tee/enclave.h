// Simulated CPU package + enclave abstraction.
//
// Substitution note (DESIGN.md §2): real SGX/TDX hardware is replaced by
// a software model that reproduces the *interfaces* MVTEE builds on —
// measured launch, hardware-keyed attestation reports, EPC accounting,
// per-enclave manifest enforcement, the one-time second-stage manifest
// installation, and the one-way exec() stage transition. The "hardware"
// signing key lives in SimulatedCpu and is never exposed; report
// verification goes through the CPU (standing in for the vendor's quote
// verification infrastructure).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "tee/manifest.h"
#include "util/bytes.h"
#include "util/status.h"

namespace mvtee::tee {

enum class TeeType : uint8_t {
  kSgx1 = 0,  // small integrity-protected EPC (MAC + integrity tree)
  kSgx2,      // large EPC with dynamic memory management (EDMM)
  kTdx,       // VM-based
};

std::string_view TeeTypeName(TeeType type);

inline constexpr size_t kReportDataSize = 64;

// Hardware-signed attestation report.
struct AttestationReport {
  uint64_t enclave_id = 0;
  TeeType tee_type = TeeType::kSgx2;
  crypto::Sha256Digest measurement{};   // code identity + manifest
  std::array<uint8_t, kReportDataSize> report_data{};  // caller-bound data
  crypto::Sha256Digest mac{};           // "hardware" signature

  util::Bytes SignedPortion() const;
  util::Bytes Serialize() const;
  static util::Result<AttestationReport> Deserialize(util::ByteSpan data);
};

class SimulatedCpu;

// One enclave = one TEE = one process = one variant (the paper's enclave
// abstraction). Created through SimulatedCpu::LaunchEnclave.
class Enclave {
 public:
  enum class Stage { kInit, kMain };

  uint64_t id() const { return id_; }
  TeeType tee_type() const { return tee_type_; }
  Stage stage() const { return stage_; }
  const Manifest& manifest() const {
    return stage_ == Stage::kMain && second_stage_ ? *second_stage_
                                                   : manifest_;
  }
  const crypto::Sha256Digest& measurement() const { return measurement_; }
  size_t epc_pages() const { return epc_pages_; }

  // Attestation: hardware-signed report binding `report_data` (e.g. a
  // public key) to this enclave's measurement.
  AttestationReport CreateReport(
      const std::array<uint8_t, kReportDataSize>& report_data) const;

  // --- TEE OS surface (manifest-enforced) ---

  // Each "syscall" is checked against the active manifest.
  util::Status CheckSyscall(const std::string& name) const;

  // Integrity check of a trusted file against the active manifest.
  util::Status VerifyTrustedFile(const std::string& path,
                                 util::ByteSpan contents) const;

  // Installs the protected-FS key (init stage only; the main stage
  // prohibits key manipulation by design).
  util::Status InstallProtectedFsKey(util::Bytes key);
  const std::optional<util::Bytes>& protected_fs_key() const {
    return pf_key_;
  }

  // One-time installation of the second-stage manifest. Fails if the
  // boot manifest did not enable two-stage mode, if already installed,
  // or after exec().
  util::Status InstallSecondStageManifest(const Manifest& manifest);
  bool second_stage_installed() const { return second_stage_.has_value(); }

  // The one-way stage transition triggered by the first exec(). Resets
  // init-stage state and enforces the second-stage manifest thereafter.
  util::Status Exec();

 private:
  friend class SimulatedCpu;
  Enclave(uint64_t id, TeeType type, crypto::Sha256Digest measurement,
          Manifest manifest, size_t epc_pages, const SimulatedCpu* cpu)
      : id_(id),
        tee_type_(type),
        measurement_(measurement),
        manifest_(std::move(manifest)),
        epc_pages_(epc_pages),
        cpu_(cpu) {}

  uint64_t id_;
  TeeType tee_type_;
  crypto::Sha256Digest measurement_;
  Manifest manifest_;             // boot (first-stage) manifest
  std::optional<Manifest> second_stage_;
  bool second_stage_locked_ = false;
  Stage stage_ = Stage::kInit;
  std::optional<util::Bytes> pf_key_;
  size_t epc_pages_;
  const SimulatedCpu* cpu_;
};

// The platform: launches enclaves, accounts EPC, signs and verifies
// reports with the per-platform hardware key.
class SimulatedCpu {
 public:
  struct Options {
    size_t total_epc_pages = 1 << 20;  // "128 GB EPC" testbed analog
    uint64_t hardware_key_seed = 0;    // 0 = random key
  };

  SimulatedCpu() : SimulatedCpu(Options{}) {}
  explicit SimulatedCpu(const Options& options);

  // Measured launch: measurement = H(code_identity || H(manifest)).
  util::Result<std::unique_ptr<Enclave>> LaunchEnclave(
      TeeType type, util::ByteSpan code_identity, const Manifest& manifest,
      size_t epc_pages);

  // Frees the enclave's EPC (call when tearing an enclave down).
  void ReleaseEnclave(const Enclave& enclave);

  // Quote verification (vendor-infrastructure stand-in).
  util::Status VerifyReport(const AttestationReport& report) const;

  size_t used_epc_pages() const;
  size_t total_epc_pages() const { return total_epc_; }

 private:
  friend class Enclave;
  crypto::Sha256Digest SignReport(const AttestationReport& report) const;

  util::Bytes hardware_key_;
  size_t total_epc_;
  mutable std::mutex mu_;
  size_t used_epc_ = 0;
  uint64_t next_enclave_id_ = 1;
};

}  // namespace mvtee::tee
