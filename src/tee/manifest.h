// TEE OS manifest (Gramine-manifest analog).
//
// A manifest pins what an enclave may do: its entrypoint, the hashes of
// trusted files, which files are encrypted, the syscall allow-list, and
// the environment policy. It is measured into the enclave identity at
// boot, and MVTEE's two-stage design installs a second, stricter
// manifest that takes effect at exec() (§4.3, §5.2).
#pragma once

#include <map>
#include <set>
#include <string>

#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/status.h"

namespace mvtee::tee {

struct Manifest {
  std::string entrypoint;
  // Integrity-protected plaintext files: path -> SHA-256 of contents.
  std::map<std::string, crypto::Sha256Digest> trusted_files;
  // Confidentiality-protected files (must be opened through the
  // protected store with the installed key).
  std::set<std::string> encrypted_files;
  // Syscall allow-list; empty set = deny everything.
  std::set<std::string> allowed_syscalls;
  // Host environment variables passed through (default: none).
  std::set<std::string> allowed_env;
  // Host-provided command-line arguments allowed?
  bool allow_host_args = false;
  // Whether a second-stage manifest may be installed (init-variants only).
  bool two_stage_enabled = false;
  // Execute only from encrypted files (enforced on the second stage).
  bool exec_from_encrypted_only = false;

  util::Bytes Serialize() const;
  static util::Result<Manifest> Deserialize(util::ByteSpan data);

  // Measurement contribution.
  crypto::Sha256Digest Hash() const;

  bool SyscallAllowed(const std::string& name) const {
    return allowed_syscalls.count(name) > 0;
  }
  bool EnvAllowed(const std::string& name) const {
    return allowed_env.count(name) > 0;
  }
};

// Convenience factories mirroring MVTEE's deployment:
//  - monitor: minimal network-only surface;
//  - init-variant: adds protected-FS setup syscalls + two-stage install;
//  - main variant: inference-only surface, no key or manifest syscalls.
Manifest MonitorManifest();
Manifest InitVariantManifest();
Manifest MainVariantManifest();

}  // namespace mvtee::tee
