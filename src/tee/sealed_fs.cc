#include "tee/sealed_fs.h"

#include "crypto/hmac.h"
#include "crypto/rand.h"
#include "crypto/sha256.h"

namespace mvtee::tee {

util::Bytes DeriveVariantFileKey(util::ByteSpan master_key,
                                 const std::string& variant_id) {
  return crypto::Hkdf({}, master_key,
                      util::ToBytes("mvtee-pf-key:" + variant_id), 32);
}

namespace {
// One-time data key per (path, version) — keeps ciphertext volume under
// any single key small (NIST usage-threshold note in §6.5).
util::Bytes DataKey(util::ByteSpan file_key, const std::string& path,
                    uint64_t version) {
  util::Bytes info = util::ToBytes("mvtee-pf-data:" + path + ":");
  util::AppendU64(info, version);
  return crypto::Hkdf({}, file_key, info, 32);
}

util::Bytes Aad(const std::string& path, uint64_t version) {
  util::Bytes aad = util::ToBytes(path);
  util::AppendU64(aad, version);
  return aad;
}
}  // namespace

void FreshnessLedger::Record(const std::string& path, uint64_t version,
                             util::ByteSpan ciphertext) {
  entries_[path] = {version, crypto::Sha256::Hash(ciphertext)};
}

util::Status FreshnessLedger::Check(const std::string& path, uint64_t version,
                                    util::ByteSpan ciphertext) const {
  auto it = entries_.find(path);
  if (it == entries_.end()) return util::OkStatus();  // first sighting
  if (version < it->second.version) {
    return util::ReplayDetected("rollback: '" + path + "' version " +
                                std::to_string(version) + " < recorded " +
                                std::to_string(it->second.version));
  }
  if (version == it->second.version) {
    auto digest = crypto::Sha256::Hash(ciphertext);
    if (!util::ConstantTimeEqual(
            util::ByteSpan(digest.data(), digest.size()),
            util::ByteSpan(it->second.digest.data(),
                           it->second.digest.size()))) {
      return util::ReplayDetected("same-version substitution on '" + path +
                                  "'");
    }
  }
  return util::OkStatus();
}

util::Status ProtectedStore::Put(const std::string& path,
                                 util::ByteSpan plaintext,
                                 util::ByteSpan key) {
  std::lock_guard<std::mutex> lock(mu_);
  RawEntry& entry = entries_[path];
  entry.version += 1;
  entry.nonce = crypto::GlobalRandom().Generate(crypto::kGcmNonceSize);
  crypto::AesGcm gcm(DataKey(key, path, entry.version));
  entry.ciphertext = gcm.Seal(entry.nonce, Aad(path, entry.version),
                              plaintext);
  return util::OkStatus();
}

util::Result<util::Bytes> ProtectedStore::Get(const std::string& path,
                                              util::ByteSpan key,
                                              FreshnessLedger* ledger) const {
  RawEntry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(path);
    if (it == entries_.end()) {
      return util::NotFound("protected file '" + path + "'");
    }
    entry = it->second;
  }
  if (ledger != nullptr) {
    MVTEE_RETURN_IF_ERROR(ledger->Check(path, entry.version,
                                        entry.ciphertext));
  }
  crypto::AesGcm gcm(DataKey(key, path, entry.version));
  auto plaintext = gcm.Open(entry.nonce, Aad(path, entry.version),
                            entry.ciphertext);
  if (!plaintext.ok()) {
    return util::AuthenticationFailure("protected file '" + path +
                                       "' failed authentication");
  }
  if (ledger != nullptr) {
    ledger->Record(path, entry.version, entry.ciphertext);
  }
  return plaintext;
}

bool ProtectedStore::Contains(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(path) > 0;
}

size_t ProtectedStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool ProtectedStore::TamperCiphertext(const std::string& path,
                                      size_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(path);
  if (it == entries_.end() || it->second.ciphertext.empty()) return false;
  it->second.ciphertext[offset % it->second.ciphertext.size()] ^= 0x01;
  return true;
}

std::optional<ProtectedStore::RawEntry> ProtectedStore::Snapshot(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(path);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool ProtectedStore::Restore(const std::string& path, const RawEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(path);
  if (it == entries_.end()) return false;
  it->second = entry;
  return true;
}

}  // namespace mvtee::tee
