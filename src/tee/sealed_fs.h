// Protected (encrypted) file store — gramine-sgx-pf-crypt analog.
//
// The store itself models *host-side* storage: an attacker may tamper
// with or roll back entries, and tests do exactly that through the
// Tamper/Snapshot interfaces. Confidentiality and integrity come from
// AES-GCM with the file path and version bound as AAD; rollback
// detection comes from a FreshnessLedger held inside the consuming
// enclave (the paper's "freshness metadata at runtime" — full defense
// would need hardware monotonic counters, same caveat as the paper).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "crypto/aead.h"
#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/status.h"

namespace mvtee::tee {

// Derives the per-variant file key from the master key (the monitor's
// "variant-specific key acts as a key derivation key").
util::Bytes DeriveVariantFileKey(util::ByteSpan master_key,
                                 const std::string& variant_id);

// Enclave-held freshness metadata: file -> expected (version, tag).
class FreshnessLedger {
 public:
  void Record(const std::string& path, uint64_t version,
              util::ByteSpan ciphertext);
  // OK if the entry matches the recorded freshness state.
  util::Status Check(const std::string& path, uint64_t version,
                     util::ByteSpan ciphertext) const;
  bool Has(const std::string& path) const {
    return entries_.count(path) > 0;
  }

 private:
  struct Entry {
    uint64_t version;
    crypto::Sha256Digest digest;
  };
  std::map<std::string, Entry> entries_;
};

class ProtectedStore {
 public:
  struct RawEntry {
    uint64_t version = 0;
    util::Bytes nonce;       // 12 bytes
    util::Bytes ciphertext;  // includes GCM tag
  };

  // Encrypts and stores; bumps the version. `key` is the (derived) file
  // key; one-time data keys are derived per (path, version).
  util::Status Put(const std::string& path, util::ByteSpan plaintext,
                   util::ByteSpan key);

  // Decrypts and verifies. If a ledger is supplied, additionally checks
  // freshness and records the entry on success.
  util::Result<util::Bytes> Get(const std::string& path, util::ByteSpan key,
                                FreshnessLedger* ledger = nullptr) const;

  bool Contains(const std::string& path) const;
  size_t size() const;

  // ---- host-attacker surface (tests / security experiments) ----
  // Flips a ciphertext byte; false if absent.
  bool TamperCiphertext(const std::string& path, size_t offset);
  // Snapshot/restore models rollback attacks.
  std::optional<RawEntry> Snapshot(const std::string& path) const;
  bool Restore(const std::string& path, const RawEntry& entry);

 private:
  mutable std::mutex mu_;
  std::map<std::string, RawEntry> entries_;
};

}  // namespace mvtee::tee
