#include "transport/channel.h"

#include <chrono>
#include <thread>

#include "util/dataplane_stats.h"

namespace mvtee::transport {

uint64_t WaitSet::Epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void WaitSet::Notify() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++epoch_;
  }
  cv_.notify_all();
}

uint64_t WaitSet::WaitFor(uint64_t epoch, int64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  if (timeout_us > 0) {
    cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
                 [&] { return epoch_ != epoch; });
  }
  return epoch_;
}

namespace internal {

void MessageQueue::Push(util::PooledBuffer frame) {
  std::shared_ptr<WaitSet> waiter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;  // silently dropped, like writing to a dead socket
    frames_.push_back(std::move(frame));
    waiter = waiter_;
  }
  cv_.notify_one();
  if (waiter) waiter->Notify();
}

std::optional<util::PooledBuffer> MessageQueue::Pop(int64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
               [&] { return !frames_.empty() || closed_; });
  if (frames_.empty()) return std::nullopt;
  util::PooledBuffer frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

void MessageQueue::Close() {
  std::shared_ptr<WaitSet> waiter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    waiter = waiter_;
  }
  cv_.notify_all();
  if (waiter) waiter->Notify();
}

bool MessageQueue::closed_and_empty() {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_ && frames_.empty();
}

bool MessageQueue::readable() {
  std::lock_guard<std::mutex> lock(mu_);
  return !frames_.empty() || closed_;
}

void MessageQueue::SetWaiter(std::shared_ptr<WaitSet> waiter) {
  std::shared_ptr<WaitSet> notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    waiter_ = std::move(waiter);
    // If data is already queued (or we're closed), the new waiter must
    // learn about it — it may have snapshotted its epoch before attach.
    if (waiter_ && (!frames_.empty() || closed_)) notify = waiter_;
  }
  if (notify) notify->Notify();
}

}  // namespace internal

util::Status Endpoint::Send(util::ByteSpan frame) {
  if (!valid()) return util::FailedPrecondition("endpoint not connected");
  util::Bytes payload(frame.begin(), frame.end());
  util::CountDataPlaneCopy(payload.size());
  return SendPooled(util::PooledBuffer::Adopt(std::move(payload)));
}

util::Status Endpoint::SendPooled(util::PooledBuffer frame) {
  if (!valid()) return util::FailedPrecondition("endpoint not connected");
  if (interceptor_) {
    // Interceptors (tamper/drop attackers, ablation hooks) operate on
    // plain Bytes; whatever they return is re-wrapped. This copy only
    // exists when an interceptor is installed.
    auto result = interceptor_(frame.bytes());
    if (!result.has_value()) return util::OkStatus();  // dropped on the wire
    util::CountDataPlaneCopy(result->size());
    frame = util::PooledBuffer::Adopt(std::move(*result));
  }
  if (cost_.latency_us > 0 || cost_.bytes_per_us > 0) {
    double us = cost_.latency_us;
    if (cost_.bytes_per_us > 0) {
      us += static_cast<double>(frame.size()) / cost_.bytes_per_us;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(us)));
  }
  bytes_sent_ += frame.size();
  frames_sent_ += 1;
  tx_->Push(std::move(frame));
  return util::OkStatus();
}

util::Result<util::Bytes> Endpoint::Recv(int64_t timeout_us) {
  auto frame = RecvPooled(timeout_us);
  if (!frame.ok()) return frame.status();
  util::Bytes out = frame->TakeBytes();
  // TakeBytes moves when it solely owns a non-pooled buffer and copies
  // otherwise (the handle still holds the storage in that case).
  if (*frame) util::CountDataPlaneCopy(out.size());
  return out;
}

util::Result<util::PooledBuffer> Endpoint::RecvPooled(int64_t timeout_us) {
  if (!valid()) return util::FailedPrecondition("endpoint not connected");
  auto frame = rx_->Pop(timeout_us);
  if (!frame.has_value()) {
    if (rx_->closed_and_empty()) {
      return util::Unavailable("peer closed the channel");
    }
    return util::DeadlineExceeded("recv timeout");
  }
  return std::move(*frame);
}

void Endpoint::Close() {
  if (tx_) tx_->Close();
  if (rx_) rx_->Close();
}

void Endpoint::InjectRaw(util::Bytes frame) {
  if (tx_) tx_->Push(util::PooledBuffer::Adopt(std::move(frame)));
}

void Endpoint::AttachWaiter(std::shared_ptr<WaitSet> waiter) {
  if (rx_) rx_->SetWaiter(std::move(waiter));
}

bool Endpoint::Readable() const {
  return rx_ && rx_->readable();
}

Endpoint Listener::Connect() {
  auto [client, server] = CreateChannel(cost_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      client.Close();
      return std::move(client);
    }
    pending_.push_back(std::move(server));
  }
  cv_.notify_one();
  return std::move(client);
}

util::Result<Endpoint> Listener::Accept(int64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
               [&] { return !pending_.empty() || closed_; });
  if (!pending_.empty()) {
    Endpoint ep = std::move(pending_.front());
    pending_.pop_front();
    return ep;
  }
  if (closed_) return util::Unavailable("listener closed");
  return util::DeadlineExceeded("accept timeout");
}

void Listener::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    pending_.clear();
  }
  cv_.notify_all();
}

std::pair<Endpoint, Endpoint> CreateChannel(const NetworkCostModel& cost) {
  auto a_to_b = std::make_shared<internal::MessageQueue>();
  auto b_to_a = std::make_shared<internal::MessageQueue>();
  Endpoint a, b;
  a.tx_ = a_to_b;
  a.rx_ = b_to_a;
  a.cost_ = cost;
  b.tx_ = b_to_a;
  b.rx_ = a_to_b;
  b.cost_ = cost;
  return {std::move(a), std::move(b)};
}

}  // namespace mvtee::transport
