#include "transport/channel.h"

#include <chrono>
#include <thread>

namespace mvtee::transport {

uint64_t WaitSet::Epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void WaitSet::Notify() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++epoch_;
  }
  cv_.notify_all();
}

uint64_t WaitSet::WaitFor(uint64_t epoch, int64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  if (timeout_us > 0) {
    cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
                 [&] { return epoch_ != epoch; });
  }
  return epoch_;
}

namespace internal {

void MessageQueue::Push(util::Bytes frame) {
  std::shared_ptr<WaitSet> waiter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;  // silently dropped, like writing to a dead socket
    frames_.push_back(std::move(frame));
    waiter = waiter_;
  }
  cv_.notify_one();
  if (waiter) waiter->Notify();
}

std::optional<util::Bytes> MessageQueue::Pop(int64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
               [&] { return !frames_.empty() || closed_; });
  if (frames_.empty()) return std::nullopt;
  util::Bytes frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

void MessageQueue::Close() {
  std::shared_ptr<WaitSet> waiter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    waiter = waiter_;
  }
  cv_.notify_all();
  if (waiter) waiter->Notify();
}

bool MessageQueue::closed_and_empty() {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_ && frames_.empty();
}

bool MessageQueue::readable() {
  std::lock_guard<std::mutex> lock(mu_);
  return !frames_.empty() || closed_;
}

void MessageQueue::SetWaiter(std::shared_ptr<WaitSet> waiter) {
  std::shared_ptr<WaitSet> notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    waiter_ = std::move(waiter);
    // If data is already queued (or we're closed), the new waiter must
    // learn about it — it may have snapshotted its epoch before attach.
    if (waiter_ && (!frames_.empty() || closed_)) notify = waiter_;
  }
  if (notify) notify->Notify();
}

}  // namespace internal

util::Status Endpoint::Send(util::ByteSpan frame) {
  if (!valid()) return util::FailedPrecondition("endpoint not connected");
  util::Bytes payload(frame.begin(), frame.end());
  if (interceptor_) {
    auto result = interceptor_(payload);
    if (!result.has_value()) return util::OkStatus();  // dropped on the wire
    payload = std::move(*result);
  }
  if (cost_.latency_us > 0 || cost_.bytes_per_us > 0) {
    double us = cost_.latency_us;
    if (cost_.bytes_per_us > 0) {
      us += static_cast<double>(payload.size()) / cost_.bytes_per_us;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(us)));
  }
  bytes_sent_ += payload.size();
  frames_sent_ += 1;
  tx_->Push(std::move(payload));
  return util::OkStatus();
}

util::Result<util::Bytes> Endpoint::Recv(int64_t timeout_us) {
  if (!valid()) return util::FailedPrecondition("endpoint not connected");
  auto frame = rx_->Pop(timeout_us);
  if (!frame.has_value()) {
    if (rx_->closed_and_empty()) {
      return util::Unavailable("peer closed the channel");
    }
    return util::DeadlineExceeded("recv timeout");
  }
  return *frame;
}

void Endpoint::Close() {
  if (tx_) tx_->Close();
  if (rx_) rx_->Close();
}

void Endpoint::InjectRaw(util::Bytes frame) {
  if (tx_) tx_->Push(std::move(frame));
}

void Endpoint::AttachWaiter(std::shared_ptr<WaitSet> waiter) {
  if (rx_) rx_->SetWaiter(std::move(waiter));
}

bool Endpoint::Readable() const {
  return rx_ && rx_->readable();
}

std::pair<Endpoint, Endpoint> CreateChannel(const NetworkCostModel& cost) {
  auto a_to_b = std::make_shared<internal::MessageQueue>();
  auto b_to_a = std::make_shared<internal::MessageQueue>();
  Endpoint a, b;
  a.tx_ = a_to_b;
  a.rx_ = b_to_a;
  a.cost_ = cost;
  b.tx_ = b_to_a;
  b.rx_ = a_to_b;
  b.cost_ = cost;
  return {std::move(a), std::move(b)};
}

}  // namespace mvtee::transport
