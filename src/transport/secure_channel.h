// RA-TLS-style secure channel (paper §4.3, §5.2).
//
// Handshake: each side sends an ephemeral X25519 public key plus a
// hardware-signed attestation report whose report_data binds that key
// (H(pubkey || role)), so a man-in-the-middle cannot splice keys without
// breaking the report MAC. Traffic keys are HKDF-derived from the ECDH
// shared secret and the handshake transcript; records are AES-GCM-256
// with per-direction monotonic sequence numbers (replay/reorder
// detection — the paper's "unique sequence numbers for freshness").
//
// This is enforced at the socket level: all application traffic goes
// through Send/Recv, there is no plaintext bypass.
#pragma once

#include <functional>
#include <memory>

#include "crypto/aead.h"
#include "crypto/x25519.h"
#include "tee/enclave.h"
#include "transport/channel.h"
#include "util/status.h"

namespace mvtee::transport {

// Verifies the peer's attestation report (measurement policy is the
// caller's: expected-measurement equality, registry lookup, …). Return
// non-OK to abort the handshake.
using ReportVerifier =
    std::function<util::Status(const tee::AttestationReport&)>;

// Convenience verifier: hardware MAC valid (via `cpu`) and measurement
// equal to `expected`.
ReportVerifier ExpectMeasurement(const tee::SimulatedCpu& cpu,
                                 const crypto::Sha256Digest& expected);
// Verifier that only checks the hardware MAC (caller inspects
// measurement afterwards via peer_report()).
ReportVerifier AnyAttestedPeer(const tee::SimulatedCpu& cpu);
// Accepts a peer WITHOUT an attestation report — only for endpoints that
// talk to parties outside TEEs (the model owner / user side of the
// monitor). A stripped report on any other channel still fails its
// verifier (the MAC check cannot pass on an empty report).
ReportVerifier AllowUnattestedPeer();

class SecureChannel {
 public:
  enum class Role : uint8_t { kClient = 0, kServer = 1 };

  // Runs the handshake over `endpoint`. `self` provides the local
  // attestation report; `verify_peer` decides whether the remote report
  // is acceptable. On success the channel owns the endpoint.
  static util::Result<std::unique_ptr<SecureChannel>> Handshake(
      Endpoint endpoint, Role role, const tee::Enclave& self,
      ReportVerifier verify_peer, int64_t timeout_us = 5'000'000);

  // Handshake for a party outside any TEE (e.g. the model owner): sends
  // no report of its own; the peer must be configured to accept
  // unattested clients or the handshake fails there.
  static util::Result<std::unique_ptr<SecureChannel>> HandshakeUnattested(
      Endpoint endpoint, Role role, ReportVerifier verify_peer,
      int64_t timeout_us = 5'000'000);

  // AEAD-protected, sequence-numbered application messages. `header` is
  // an optional *authenticated plaintext* header: it travels in the
  // clear (so intermediaries and the receiver can read it before
  // decrypting) but is bound into the record's AAD, so any tampering
  // fails the AEAD open exactly like ciphertext tampering. Used for the
  // cross-TEE trace context (DESIGN.md §8) — never for model data.
  util::Status Send(util::ByteSpan plaintext, util::ByteSpan header = {});
  // On success, `*header` (when non-null) receives the record's
  // authenticated plaintext header (empty when the sender attached
  // none).
  util::Result<util::Bytes> Recv(int64_t timeout_us = 5'000'000,
                                 util::Bytes* header = nullptr);

  // Zero-copy send: acquires one pooled record sized for
  // seq || header_len || header || payload || tag, writes the record
  // prefix, invokes `encode` to append exactly `payload_len` bytes of
  // plaintext, seals in place (tag appended) and moves the buffer into
  // the transport queue. The AAD binding (seq || header) is identical
  // to Send's.
  util::Status SendEncoded(size_t payload_len, util::ByteSpan header,
                           const std::function<void(util::Bytes&)>& encode);

  // Zero-copy receive: verifies and decrypts the record *in place* and
  // returns an InFrame whose span() is the plaintext, aliasing the
  // pooled record buffer (pin it via keepalive() for tensor views).
  util::Result<InFrame> RecvPooled(int64_t timeout_us = 5'000'000,
                                   util::Bytes* header = nullptr);

  void Close() { endpoint_.Close(); }

  const tee::AttestationReport& peer_report() const { return peer_report_; }
  uint64_t bytes_sent() const { return endpoint_.bytes_sent(); }

  // Evented receive: readiness of the underlying endpoint. A readable
  // endpoint means Recv(0) yields a record (possibly failing to open —
  // still an event the consumer must see) or a terminal error.
  void AttachWaiter(std::shared_ptr<WaitSet> waiter) {
    endpoint_.AttachWaiter(std::move(waiter));
  }
  bool Readable() const { return endpoint_.Readable(); }

  // Testing hook: the underlying (untrusted) endpoint.
  Endpoint& raw_endpoint() { return endpoint_; }

 private:
  SecureChannel(Endpoint endpoint, util::Bytes send_key,
                util::Bytes recv_key, tee::AttestationReport peer_report);

  static util::Result<std::unique_ptr<SecureChannel>> HandshakeInternal(
      Endpoint endpoint, Role role, const tee::Enclave* self,
      ReportVerifier verify_peer, int64_t timeout_us);

  Endpoint endpoint_;
  crypto::AesGcm send_cipher_;
  crypto::AesGcm recv_cipher_;
  uint64_t send_seq_ = 0;
  uint64_t recv_seq_ = 0;
  tee::AttestationReport peer_report_;
  // Per-channel AAD scratch (seq || header), reused across records so
  // the hot path allocates nothing. Send and Recv each run on one
  // thread (the channel is not thread-safe), so separate scratches keep
  // the two directions independent.
  util::Bytes send_aad_scratch_;
  util::Bytes recv_aad_scratch_;
};

}  // namespace mvtee::transport
