#include "transport/secure_channel.h"

#include <cstring>

#include "crypto/hmac.h"
#include "crypto/rand.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/dataplane_stats.h"

namespace mvtee::transport {

namespace {

// Process-wide AEAD/byte accounting across every secure channel. The
// instruments are resolved once; per-record updates are relaxed atomics.
struct ChannelMetrics {
  obs::Counter* bytes_sent;
  obs::Counter* bytes_recvd;
  obs::Counter* seal_us;
  obs::Counter* open_us;
  obs::Counter* records_sealed;
  obs::Counter* records_opened;
  obs::Counter* auth_failures;
  obs::Counter* bytes_sealed_total;

  static ChannelMetrics& Get() {
    static ChannelMetrics* m = [] {
      obs::Registry& reg = obs::Registry::Default();
      auto* out = new ChannelMetrics();
      out->bytes_sent = &reg.GetCounter("channel.bytes_sent");
      out->bytes_recvd = &reg.GetCounter("channel.bytes_recvd");
      out->seal_us = &reg.GetCounter("channel.seal_us");
      out->open_us = &reg.GetCounter("channel.open_us");
      out->records_sealed = &reg.GetCounter("channel.records_sealed");
      out->records_opened = &reg.GetCounter("channel.records_opened");
      out->auth_failures = &reg.GetCounter("channel.auth_failures");
      out->bytes_sealed_total = &reg.GetCounter("channel.bytes_sealed_total");
      return out;
    }();
    return *m;
  }
};

std::array<uint8_t, tee::kReportDataSize> BindKeyToReportData(
    const crypto::X25519Key& pubkey, SecureChannel::Role role) {
  crypto::Sha256 hasher;
  hasher.Update(util::ByteSpan(pubkey.data(), pubkey.size()));
  uint8_t role_byte = static_cast<uint8_t>(role);
  hasher.Update(util::ByteSpan(&role_byte, 1));
  auto digest = hasher.Finish();
  std::array<uint8_t, tee::kReportDataSize> report_data{};
  std::copy(digest.begin(), digest.end(), report_data.begin());
  return report_data;
}

struct HelloMessage {
  crypto::X25519Key pubkey;
  util::Bytes report;

  util::Bytes Serialize() const {
    util::Bytes out;
    util::AppendU32(out, 0x4d564853);  // "MVHS"
    util::AppendBytes(out, util::ByteSpan(pubkey.data(), pubkey.size()));
    util::AppendLengthPrefixed(out, report);
    return out;
  }

  static util::Result<HelloMessage> Deserialize(util::ByteSpan data) {
    util::ByteReader reader(data);
    uint32_t magic;
    if (!reader.ReadU32(magic) || magic != 0x4d564853) {
      return util::InvalidArgument("bad hello magic");
    }
    HelloMessage msg;
    util::Bytes key;
    if (!reader.ReadBytes(crypto::kX25519KeySize, key) ||
        !reader.ReadLengthPrefixed(msg.report) || !reader.done()) {
      return util::InvalidArgument("malformed hello");
    }
    std::copy(key.begin(), key.end(), msg.pubkey.begin());
    return msg;
  }
};

}  // namespace

ReportVerifier ExpectMeasurement(const tee::SimulatedCpu& cpu,
                                 const crypto::Sha256Digest& expected) {
  return [&cpu, expected](const tee::AttestationReport& report) {
    MVTEE_RETURN_IF_ERROR(cpu.VerifyReport(report));
    if (!util::ConstantTimeEqual(
            util::ByteSpan(report.measurement.data(),
                           report.measurement.size()),
            util::ByteSpan(expected.data(), expected.size()))) {
      return util::AttestationFailure("unexpected enclave measurement");
    }
    return util::OkStatus();
  };
}

ReportVerifier AnyAttestedPeer(const tee::SimulatedCpu& cpu) {
  return [&cpu](const tee::AttestationReport& report) {
    return cpu.VerifyReport(report);
  };
}

ReportVerifier AllowUnattestedPeer() {
  return [](const tee::AttestationReport&) { return util::OkStatus(); };
}

SecureChannel::SecureChannel(Endpoint endpoint, util::Bytes send_key,
                             util::Bytes recv_key,
                             tee::AttestationReport peer_report)
    : endpoint_(std::move(endpoint)),
      send_cipher_(send_key),
      recv_cipher_(recv_key),
      peer_report_(peer_report) {}

util::Result<std::unique_ptr<SecureChannel>> SecureChannel::Handshake(
    Endpoint endpoint, Role role, const tee::Enclave& self,
    ReportVerifier verify_peer, int64_t timeout_us) {
  return HandshakeInternal(std::move(endpoint), role, &self,
                           std::move(verify_peer), timeout_us);
}

util::Result<std::unique_ptr<SecureChannel>>
SecureChannel::HandshakeUnattested(Endpoint endpoint, Role role,
                                   ReportVerifier verify_peer,
                                   int64_t timeout_us) {
  return HandshakeInternal(std::move(endpoint), role, nullptr,
                           std::move(verify_peer), timeout_us);
}

util::Result<std::unique_ptr<SecureChannel>> SecureChannel::HandshakeInternal(
    Endpoint endpoint, Role role, const tee::Enclave* self,
    ReportVerifier verify_peer, int64_t timeout_us) {
  // Ephemeral key pair.
  crypto::X25519Key private_key;
  crypto::GlobalRandom().Fill(private_key.data(), private_key.size());
  crypto::X25519Key public_key = crypto::X25519PublicKey(private_key);

  HelloMessage my_hello;
  my_hello.pubkey = public_key;
  if (self != nullptr) {
    my_hello.report =
        self->CreateReport(BindKeyToReportData(public_key, role)).Serialize();
  }
  const util::Bytes my_hello_bytes = my_hello.Serialize();

  // Client speaks first; server answers.
  util::Bytes peer_hello_bytes;
  if (role == Role::kClient) {
    MVTEE_RETURN_IF_ERROR(endpoint.Send(my_hello_bytes));
    MVTEE_ASSIGN_OR_RETURN(peer_hello_bytes, endpoint.Recv(timeout_us));
  } else {
    MVTEE_ASSIGN_OR_RETURN(peer_hello_bytes, endpoint.Recv(timeout_us));
    MVTEE_RETURN_IF_ERROR(endpoint.Send(my_hello_bytes));
  }

  MVTEE_ASSIGN_OR_RETURN(HelloMessage peer_hello,
                         HelloMessage::Deserialize(peer_hello_bytes));
  tee::AttestationReport peer_report;
  if (!peer_hello.report.empty()) {
    MVTEE_ASSIGN_OR_RETURN(peer_report, tee::AttestationReport::Deserialize(
                                            peer_hello.report));
    // The peer's report must bind the peer's ephemeral key under the
    // opposite role — a spliced key breaks this binding.
    const Role peer_role =
        role == Role::kClient ? Role::kServer : Role::kClient;
    auto expected_binding =
        BindKeyToReportData(peer_hello.pubkey, peer_role);
    if (!util::ConstantTimeEqual(
            util::ByteSpan(peer_report.report_data.data(),
                           peer_report.report_data.size()),
            util::ByteSpan(expected_binding.data(),
                           expected_binding.size()))) {
      return util::AttestationFailure("report does not bind handshake key");
    }
  }
  // An absent report reaches the verifier as an all-zero report, which
  // no attestation-requiring verifier accepts (its MAC cannot verify).
  MVTEE_RETURN_IF_ERROR(verify_peer(peer_report));

  // Shared secret + transcript-bound key schedule.
  crypto::X25519Key shared = crypto::X25519(private_key, peer_hello.pubkey);
  crypto::Sha256 transcript;
  if (role == Role::kClient) {
    transcript.Update(my_hello_bytes);
    transcript.Update(peer_hello_bytes);
  } else {
    transcript.Update(peer_hello_bytes);
    transcript.Update(my_hello_bytes);
  }
  auto transcript_hash = transcript.Finish();

  util::Bytes keys = crypto::Hkdf(
      util::ByteSpan(transcript_hash.data(), transcript_hash.size()),
      util::ByteSpan(shared.data(), shared.size()),
      util::ToBytes("mvtee-ratls-v1"), 64);
  util::Bytes client_key(keys.begin(), keys.begin() + 32);
  util::Bytes server_key(keys.begin() + 32, keys.end());

  util::Bytes send_key = role == Role::kClient ? client_key : server_key;
  util::Bytes recv_key = role == Role::kClient ? server_key : client_key;
  return std::unique_ptr<SecureChannel>(new SecureChannel(
      std::move(endpoint), std::move(send_key), std::move(recv_key),
      peer_report));
}

namespace {
void WriteRecordNonce(uint64_t seq, uint8_t out[crypto::kGcmNonceSize]) {
  std::memset(out, 0, crypto::kGcmNonceSize);
  for (int i = 0; i < 8; ++i) {
    out[4 + i] = static_cast<uint8_t>(seq >> (56 - 8 * i));
  }
}

// AAD = seq || header: the sequence number pins the record's position
// in the stream and the authenticated plaintext header is integrity-
// bound without being encrypted. A header flipped on the wire makes the
// AEAD open fail exactly like ciphertext tampering. Written into a
// reused per-channel scratch so the record path allocates nothing.
void BuildRecordAad(uint64_t seq, util::ByteSpan header,
                    util::Bytes& scratch) {
  scratch.clear();
  util::AppendU64(scratch, seq);
  util::AppendBytes(scratch, header);
}

constexpr size_t kRecordPrefixSize = 8 + 4;  // seq(8) || header_len(4)
}  // namespace

// Record layout: seq(8) || header_len(4) || header || sealed. The
// header travels in the clear but is covered by the AAD above; the
// header_len field is 32-bit so the frame that follows starts 4-byte
// aligned within the record (a requirement for zero-copy float views
// on the receive side).
util::Status SecureChannel::SendEncoded(
    size_t payload_len, util::ByteSpan header,
    const std::function<void(util::Bytes&)>& encode) {
  if (header.size() > 0xffff) {
    return util::InvalidArgument("record header exceeds 64 KiB");
  }
  const uint64_t seq = send_seq_++;
  const size_t record_size = kRecordPrefixSize + header.size() + payload_len +
                             crypto::kGcmTagSize;
  util::PooledBuffer record = util::BufferPool::Default().Acquire(record_size);
  util::Bytes& out = record.bytes();
  out.clear();  // capacity is retained; appends below cannot reallocate
  util::AppendU64(out, seq);
  util::AppendU32(out, static_cast<uint32_t>(header.size()));
  util::AppendBytes(out, header);
  encode(out);
  MVTEE_CHECK(out.size() == record_size - crypto::kGcmTagSize);
  out.resize(record_size);

  uint8_t nonce[crypto::kGcmNonceSize];
  WriteRecordNonce(seq, nonce);
  BuildRecordAad(seq, header, send_aad_scratch_);
  ChannelMetrics& cm = ChannelMetrics::Get();
  const int64_t cpu0 = util::ThreadCpuMicros();
  send_cipher_.SealInPlace(util::ByteSpan(nonce, crypto::kGcmNonceSize),
                           send_aad_scratch_,
                           out.data() + kRecordPrefixSize + header.size(),
                           payload_len);
  cm.seal_us->Add(static_cast<uint64_t>(util::ThreadCpuMicros() - cpu0));
  cm.records_sealed->Add(1);
  cm.bytes_sealed_total->Add(payload_len);
  cm.bytes_sent->Add(record_size);
  return endpoint_.SendPooled(std::move(record));
}

util::Status SecureChannel::Send(util::ByteSpan plaintext,
                                 util::ByteSpan header) {
  return SendEncoded(plaintext.size(), header, [&](util::Bytes& out) {
    util::AppendBytes(out, plaintext);
    util::CountDataPlaneCopy(plaintext.size());
  });
}

util::Result<InFrame> SecureChannel::RecvPooled(int64_t timeout_us,
                                                util::Bytes* header) {
  MVTEE_ASSIGN_OR_RETURN(util::PooledBuffer record,
                         endpoint_.RecvPooled(timeout_us));
  ChannelMetrics& cm = ChannelMetrics::Get();
  util::ByteReader reader(record.span());
  uint64_t seq;
  uint32_t header_len;
  if (!reader.ReadU64(seq) || !reader.ReadU32(header_len)) {
    cm.auth_failures->Add(1);
    return util::AuthenticationFailure("malformed record");
  }
  if (seq != recv_seq_) {
    cm.auth_failures->Add(1);
    return util::ReplayDetected("record sequence " + std::to_string(seq) +
                                " != expected " +
                                std::to_string(recv_seq_));
  }
  util::ByteSpan hdr;
  if (!reader.ReadSpan(header_len, hdr)) {
    cm.auth_failures->Add(1);
    return util::AuthenticationFailure("truncated record header");
  }
  const size_t sealed_off = reader.position();
  const size_t sealed_len = reader.remaining();
  uint8_t nonce[crypto::kGcmNonceSize];
  WriteRecordNonce(seq, nonce);
  BuildRecordAad(seq, hdr, recv_aad_scratch_);
  const int64_t cpu0 = util::ThreadCpuMicros();
  auto pt_len = recv_cipher_.OpenInPlace(
      util::ByteSpan(nonce, crypto::kGcmNonceSize), recv_aad_scratch_,
      record.data() + sealed_off, sealed_len);
  cm.open_us->Add(static_cast<uint64_t>(util::ThreadCpuMicros() - cpu0));
  if (!pt_len.ok()) {
    // A record that fails to open is an authentication failure, not a
    // successfully opened record — this includes any bit flipped in the
    // plaintext header, which only participates via the AAD.
    cm.auth_failures->Add(1);
    return pt_len.status();
  }
  cm.records_opened->Add(1);
  cm.bytes_recvd->Add(record.size());
  recv_seq_ += 1;
  if (header != nullptr) header->assign(hdr.begin(), hdr.end());
  InFrame frame;
  frame.off = sealed_off;
  frame.len = *pt_len;
  frame.buf = std::move(record);
  return frame;
}

util::Result<util::Bytes> SecureChannel::Recv(int64_t timeout_us,
                                              util::Bytes* header) {
  MVTEE_ASSIGN_OR_RETURN(InFrame frame, RecvPooled(timeout_us, header));
  util::ByteSpan pt = frame.span();
  util::CountDataPlaneCopy(pt.size());
  return util::Bytes(pt.begin(), pt.end());
}

}  // namespace mvtee::transport
