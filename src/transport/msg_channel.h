// Uniform message-channel interface over secure (RA-TLS) or plaintext
// transports. The plaintext form exists solely for the encryption-
// overhead ablation (Fig. 10 baseline); production paths always use the
// secure form.
#pragma once

#include <memory>
#include <vector>

#include "transport/channel.h"
#include "transport/secure_channel.h"

namespace mvtee::transport {

class MsgChannel {
 public:
  virtual ~MsgChannel() = default;
  virtual util::Status Send(util::ByteSpan frame) = 0;
  virtual util::Result<util::Bytes> Recv(int64_t timeout_us) = 0;
  virtual void Close() = 0;
  virtual uint64_t bytes_sent() const = 0;
  // Evented receive: register a WaitSet notified when this channel
  // becomes readable, and poll readiness without consuming.
  virtual void AttachWaiter(std::shared_ptr<WaitSet> waiter) = 0;
  virtual bool Readable() const = 0;
};

class PlainMsgChannel : public MsgChannel {
 public:
  explicit PlainMsgChannel(Endpoint endpoint)
      : endpoint_(std::move(endpoint)) {}
  util::Status Send(util::ByteSpan frame) override {
    return endpoint_.Send(frame);
  }
  util::Result<util::Bytes> Recv(int64_t timeout_us) override {
    return endpoint_.Recv(timeout_us);
  }
  void Close() override { endpoint_.Close(); }
  uint64_t bytes_sent() const override { return endpoint_.bytes_sent(); }
  void AttachWaiter(std::shared_ptr<WaitSet> waiter) override {
    endpoint_.AttachWaiter(std::move(waiter));
  }
  bool Readable() const override { return endpoint_.Readable(); }

 private:
  Endpoint endpoint_;
};

class SecureMsgChannel : public MsgChannel {
 public:
  explicit SecureMsgChannel(std::unique_ptr<SecureChannel> channel)
      : channel_(std::move(channel)) {}
  util::Status Send(util::ByteSpan frame) override {
    return channel_->Send(frame);
  }
  util::Result<util::Bytes> Recv(int64_t timeout_us) override {
    return channel_->Recv(timeout_us);
  }
  void Close() override { channel_->Close(); }
  uint64_t bytes_sent() const override { return channel_->bytes_sent(); }
  void AttachWaiter(std::shared_ptr<WaitSet> waiter) override {
    channel_->AttachWaiter(std::move(waiter));
  }
  bool Readable() const override { return channel_->Readable(); }
  SecureChannel& secure() { return *channel_; }

 private:
  std::unique_ptr<SecureChannel> channel_;
};

// Blocks until any channel in `channels` is readable, `set`'s epoch
// advances for another reason (e.g. a worker pool completion), or the
// timeout elapses. Returns the index of the first readable channel, or
// -1 if none is readable on wakeup. The caller must have attached `set`
// to every channel beforehand.
inline int WaitAny(const std::vector<MsgChannel*>& channels,
                   WaitSet& set, int64_t timeout_us) {
  uint64_t epoch = set.Epoch();
  for (size_t i = 0; i < channels.size(); ++i) {
    if (channels[i] && channels[i]->Readable()) return static_cast<int>(i);
  }
  set.WaitFor(epoch, timeout_us);
  for (size_t i = 0; i < channels.size(); ++i) {
    if (channels[i] && channels[i]->Readable()) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace mvtee::transport
