// Uniform message-channel interface over secure (RA-TLS) or plaintext
// transports. The plaintext form exists solely for the encryption-
// overhead ablation (Fig. 10 baseline); production paths always use the
// secure form.
#pragma once

#include <memory>

#include "transport/channel.h"
#include "transport/secure_channel.h"

namespace mvtee::transport {

class MsgChannel {
 public:
  virtual ~MsgChannel() = default;
  virtual util::Status Send(util::ByteSpan frame) = 0;
  virtual util::Result<util::Bytes> Recv(int64_t timeout_us) = 0;
  virtual void Close() = 0;
  virtual uint64_t bytes_sent() const = 0;
};

class PlainMsgChannel : public MsgChannel {
 public:
  explicit PlainMsgChannel(Endpoint endpoint)
      : endpoint_(std::move(endpoint)) {}
  util::Status Send(util::ByteSpan frame) override {
    return endpoint_.Send(frame);
  }
  util::Result<util::Bytes> Recv(int64_t timeout_us) override {
    return endpoint_.Recv(timeout_us);
  }
  void Close() override { endpoint_.Close(); }
  uint64_t bytes_sent() const override { return endpoint_.bytes_sent(); }

 private:
  Endpoint endpoint_;
};

class SecureMsgChannel : public MsgChannel {
 public:
  explicit SecureMsgChannel(std::unique_ptr<SecureChannel> channel)
      : channel_(std::move(channel)) {}
  util::Status Send(util::ByteSpan frame) override {
    return channel_->Send(frame);
  }
  util::Result<util::Bytes> Recv(int64_t timeout_us) override {
    return channel_->Recv(timeout_us);
  }
  void Close() override { channel_->Close(); }
  uint64_t bytes_sent() const override { return channel_->bytes_sent(); }
  SecureChannel& secure() { return *channel_; }

 private:
  std::unique_ptr<SecureChannel> channel_;
};

}  // namespace mvtee::transport
