// Uniform message-channel interface over secure (RA-TLS) or plaintext
// transports. The plaintext form exists solely for the encryption-
// overhead ablation (Fig. 10 baseline); production paths always use the
// secure form.
//
// Both forms carry an optional per-frame *header* alongside the frame:
// small plaintext metadata (the cross-TEE trace context, DESIGN.md §8)
// that the secure form binds into the record's AAD — integrity-
// protected, never confidential, never model data.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "transport/channel.h"
#include "transport/secure_channel.h"

namespace mvtee::transport {

class MsgChannel {
 public:
  virtual ~MsgChannel() = default;
  virtual util::Status Send(util::ByteSpan frame,
                            util::ByteSpan header) = 0;
  // On success, `*header` (when non-null) receives the frame's header
  // (empty when the sender attached none).
  virtual util::Result<util::Bytes> Recv(int64_t timeout_us,
                                         util::Bytes* header) = 0;
  // Headerless convenience forms (the common call shape).
  util::Status Send(util::ByteSpan frame) { return Send(frame, {}); }
  util::Result<util::Bytes> Recv(int64_t timeout_us) {
    return Recv(timeout_us, nullptr);
  }
  // Zero-copy forms. SendEncoded writes the frame directly into one
  // pooled wire buffer via `encode` (which must append exactly
  // `frame_len` bytes); RecvPooled returns the received frame as a
  // region of the pooled wire buffer, so tensor views can alias it.
  // The defaults here fall back to the copying Send/Recv, so transports
  // gain the fast path by overriding.
  virtual util::Status SendEncoded(
      size_t frame_len, util::ByteSpan header,
      const std::function<void(util::Bytes&)>& encode) {
    util::Bytes frame;
    frame.reserve(frame_len);
    encode(frame);
    return Send(frame, header);
  }
  virtual util::Result<InFrame> RecvPooled(int64_t timeout_us,
                                           util::Bytes* header) {
    MVTEE_ASSIGN_OR_RETURN(util::Bytes frame, Recv(timeout_us, header));
    return InFrame::Adopt(std::move(frame));
  }
  util::Result<InFrame> RecvPooled(int64_t timeout_us) {
    return RecvPooled(timeout_us, nullptr);
  }
  virtual void Close() = 0;
  virtual uint64_t bytes_sent() const = 0;
  // Evented receive: register a WaitSet notified when this channel
  // becomes readable, and poll readiness without consuming.
  virtual void AttachWaiter(std::shared_ptr<WaitSet> waiter) = 0;
  virtual bool Readable() const = 0;
};

class PlainMsgChannel : public MsgChannel {
 public:
  explicit PlainMsgChannel(Endpoint endpoint)
      : endpoint_(std::move(endpoint)) {}
  using MsgChannel::Recv;
  using MsgChannel::RecvPooled;
  using MsgChannel::Send;
  // Plaintext framing: header_len(4) || header || frame inside the
  // endpoint message (no integrity protection — ablation only). The
  // length field is 32-bit so the frame starts 4-byte aligned in the
  // wire buffer, mirroring the secure record layout.
  util::Status SendEncoded(
      size_t frame_len, util::ByteSpan header,
      const std::function<void(util::Bytes&)>& encode) override {
    if (header.size() > 0xffff) {
      return util::InvalidArgument("frame header exceeds 64 KiB");
    }
    const size_t wire_size = 4 + header.size() + frame_len;
    util::PooledBuffer wire = util::BufferPool::Default().Acquire(wire_size);
    util::Bytes& out = wire.bytes();
    out.clear();
    util::AppendU32(out, static_cast<uint32_t>(header.size()));
    util::AppendBytes(out, header);
    encode(out);
    MVTEE_CHECK(out.size() == wire_size);
    return endpoint_.SendPooled(std::move(wire));
  }
  util::Status Send(util::ByteSpan frame, util::ByteSpan header) override {
    return SendEncoded(frame.size(), header, [&](util::Bytes& out) {
      util::AppendBytes(out, frame);
    });
  }
  util::Result<InFrame> RecvPooled(int64_t timeout_us,
                                   util::Bytes* header) override {
    MVTEE_ASSIGN_OR_RETURN(util::PooledBuffer wire,
                           endpoint_.RecvPooled(timeout_us));
    util::ByteReader reader(wire.span());
    uint32_t header_len;
    util::ByteSpan hdr;
    if (!reader.ReadU32(header_len) || !reader.ReadSpan(header_len, hdr)) {
      return util::InvalidArgument("malformed plaintext frame header");
    }
    if (header != nullptr) header->assign(hdr.begin(), hdr.end());
    InFrame frame;
    frame.off = reader.position();
    frame.len = reader.remaining();
    frame.buf = std::move(wire);
    return frame;
  }
  util::Result<util::Bytes> Recv(int64_t timeout_us,
                                 util::Bytes* header) override {
    MVTEE_ASSIGN_OR_RETURN(InFrame frame, RecvPooled(timeout_us, header));
    util::ByteSpan payload = frame.span();
    return util::Bytes(payload.begin(), payload.end());
  }
  void Close() override { endpoint_.Close(); }
  uint64_t bytes_sent() const override { return endpoint_.bytes_sent(); }
  void AttachWaiter(std::shared_ptr<WaitSet> waiter) override {
    endpoint_.AttachWaiter(std::move(waiter));
  }
  bool Readable() const override { return endpoint_.Readable(); }

 private:
  Endpoint endpoint_;
};

class SecureMsgChannel : public MsgChannel {
 public:
  explicit SecureMsgChannel(std::unique_ptr<SecureChannel> channel)
      : channel_(std::move(channel)) {}
  using MsgChannel::Recv;
  using MsgChannel::RecvPooled;
  using MsgChannel::Send;
  util::Status Send(util::ByteSpan frame, util::ByteSpan header) override {
    return channel_->Send(frame, header);
  }
  util::Result<util::Bytes> Recv(int64_t timeout_us,
                                 util::Bytes* header) override {
    return channel_->Recv(timeout_us, header);
  }
  util::Status SendEncoded(
      size_t frame_len, util::ByteSpan header,
      const std::function<void(util::Bytes&)>& encode) override {
    return channel_->SendEncoded(frame_len, header, encode);
  }
  util::Result<InFrame> RecvPooled(int64_t timeout_us,
                                   util::Bytes* header) override {
    return channel_->RecvPooled(timeout_us, header);
  }
  void Close() override { channel_->Close(); }
  uint64_t bytes_sent() const override { return channel_->bytes_sent(); }
  void AttachWaiter(std::shared_ptr<WaitSet> waiter) override {
    channel_->AttachWaiter(std::move(waiter));
  }
  bool Readable() const override { return channel_->Readable(); }
  SecureChannel& secure() { return *channel_; }

 private:
  std::unique_ptr<SecureChannel> channel_;
};

// Blocks until any channel in `channels` is readable, `set`'s epoch
// advances for another reason (e.g. a worker pool completion), or the
// timeout elapses. Returns the index of the first readable channel, or
// -1 if none is readable on wakeup. The caller must have attached `set`
// to every channel beforehand.
inline int WaitAny(const std::vector<MsgChannel*>& channels,
                   WaitSet& set, int64_t timeout_us) {
  uint64_t epoch = set.Epoch();
  for (size_t i = 0; i < channels.size(); ++i) {
    if (channels[i] && channels[i]->Readable()) return static_cast<int>(i);
  }
  set.WaitFor(epoch, timeout_us);
  for (size_t i = 0; i < channels.size(); ++i) {
    if (channels[i] && channels[i]->Readable()) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace mvtee::transport
