// In-process duplex message channels.
//
// Substitution note (DESIGN.md §2): stands in for the testbed's TCP/IP
// sockets. A channel is *untrusted*: it models the host network, so it
// supports a per-endpoint interceptor (tamper/drop) and raw injection —
// the attacker surface the secure channel layer must defeat. An optional
// cost model charges per-message latency and per-byte serialization time
// so benchmarks reflect 10 GbE-like transfer costs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "util/buffer_pool.h"
#include "util/bytes.h"
#include "util/status.h"

namespace mvtee::transport {

// A received frame backed by a refcounted (usually pooled) buffer,
// with [off, off+len) delimiting the interesting region — the whole
// frame for plain channels, the opened plaintext for secure ones.
// Tensor views alias this region and pin it via keepalive().
struct InFrame {
  util::PooledBuffer buf;
  size_t off = 0;
  size_t len = 0;

  util::ByteSpan span() const {
    if (!buf) return util::ByteSpan();
    return util::ByteSpan(buf.data() + off, len);
  }
  std::shared_ptr<const void> keepalive() const { return buf.keepalive(); }

  static InFrame Adopt(util::Bytes frame) {
    InFrame f;
    f.buf = util::PooledBuffer::Adopt(std::move(frame));
    f.len = f.buf.size();
    return f;
  }
};

// Condition-variable-backed poll set: the readiness/wakeup primitive
// behind the evented monitor loop. Producers (message queues, worker
// pools) call Notify() whenever something becomes consumable; a consumer
// snapshots Epoch(), polls its sources, and — if it found nothing —
// blocks in WaitFor() until the epoch advances. An event that lands
// between the snapshot and the wait advances the epoch first, so the
// wait returns immediately instead of losing the wakeup.
class WaitSet {
 public:
  // Current event epoch (bumped by every Notify).
  uint64_t Epoch() const;

  // Bumps the epoch and wakes all waiters.
  void Notify();

  // Blocks until Epoch() != epoch or the timeout elapses. Returns the
  // epoch observed on wakeup (== `epoch` means timeout).
  uint64_t WaitFor(uint64_t epoch, int64_t timeout_us);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t epoch_ = 0;
};

struct NetworkCostModel {
  double latency_us = 0.0;     // per message
  double bytes_per_us = 0.0;   // serialization rate; 0 = infinite
  // 10 GbE + loopback-ish latency, the paper's testbed fabric.
  static NetworkCostModel TenGbE() { return {30.0, 1250.0}; }
  static NetworkCostModel Free() { return {0.0, 0.0}; }
};

// Modeled wire time for one message of `bytes` (virtual-time model).
inline double WireMicros(const NetworkCostModel& m, size_t bytes) {
  double us = m.latency_us;
  if (m.bytes_per_us > 0) {
    us += static_cast<double>(bytes) / m.bytes_per_us;
  }
  return us;
}

namespace internal {
class MessageQueue {
 public:
  // Queues carry refcounted pooled buffers, so a frame moves from
  // sender to receiver without its bytes being copied.
  void Push(util::PooledBuffer frame);
  // Blocks up to timeout; nullopt on timeout, error state on close+empty
  // is signalled via closed() by the caller.
  std::optional<util::PooledBuffer> Pop(int64_t timeout_us);
  void Close();
  bool closed_and_empty();
  // True if a Pop(0) would yield a frame or an error (closed + drained).
  bool readable();
  // Registers a WaitSet notified on every Push and on Close.
  void SetWaiter(std::shared_ptr<WaitSet> waiter);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<util::PooledBuffer> frames_;
  bool closed_ = false;
  std::shared_ptr<WaitSet> waiter_;
};
}  // namespace internal

// Interceptor: invoked on every outgoing frame. Return the (possibly
// modified) frame to forward, or nullopt to drop it.
using Interceptor =
    std::function<std::optional<util::Bytes>(const util::Bytes&)>;

class Endpoint {
 public:
  Endpoint() = default;

  // Sends one frame (applies cost model + interceptor). Copies `frame`
  // into a fresh buffer; the zero-copy path is SendPooled.
  util::Status Send(util::ByteSpan frame);

  // Zero-copy send: moves the buffer into the peer's queue (applies
  // cost model + interceptor; an installed interceptor forces one copy
  // since it works on plain Bytes).
  util::Status SendPooled(util::PooledBuffer frame);

  // Receives one frame; kDeadlineExceeded on timeout, kUnavailable if
  // the peer closed and the queue drained.
  util::Result<util::Bytes> Recv(int64_t timeout_us = 5'000'000);

  // Zero-copy receive: hands back the sender's buffer.
  util::Result<util::PooledBuffer> RecvPooled(int64_t timeout_us = 5'000'000);

  void Close();
  bool valid() const { return tx_ != nullptr; }

  void SetInterceptor(Interceptor interceptor) {
    interceptor_ = std::move(interceptor);
  }

  // Host-attacker primitive: injects a raw frame into the peer's
  // receive queue, bypassing cost model and interceptor.
  void InjectRaw(util::Bytes frame);

  // Evented receive support: the waiter is notified whenever a frame
  // lands in (or the peer closes) this endpoint's receive queue.
  void AttachWaiter(std::shared_ptr<WaitSet> waiter);
  // True if Recv(0) would return a frame or a terminal error.
  bool Readable() const;

  // Total bytes pushed through Send (post-interceptor), for overhead
  // accounting in benchmarks.
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t frames_sent() const { return frames_sent_; }

 private:
  friend std::pair<Endpoint, Endpoint> CreateChannel(
      const NetworkCostModel& cost);

  std::shared_ptr<internal::MessageQueue> tx_;
  std::shared_ptr<internal::MessageQueue> rx_;
  NetworkCostModel cost_;
  Interceptor interceptor_;
  uint64_t bytes_sent_ = 0;
  uint64_t frames_sent_ = 0;
};

// Creates the two ends of a duplex channel.
std::pair<Endpoint, Endpoint> CreateChannel(
    const NetworkCostModel& cost = NetworkCostModel::Free());

// Accept queue for client-facing services: stands in for a listening
// TCP socket. Connect() creates a fresh duplex channel (under the
// listener's cost model), enqueues the server end for Accept(), and
// hands the client end back to the dialer. Like the channels it mints,
// the listener is *untrusted* — anyone can connect; it is the attested
// handshake run over the accepted endpoint that gates service access.
class Listener {
 public:
  explicit Listener(NetworkCostModel cost = NetworkCostModel::Free())
      : cost_(cost) {}

  // Dials the listener: returns the client end of a new channel. The
  // server end becomes visible to Accept(). Dialing a closed listener
  // returns an already-closed endpoint (the RA-TLS handshake over it
  // fails with kUnavailable, like connecting to a dead port).
  Endpoint Connect();

  // Blocks for the next queued connection; kDeadlineExceeded on
  // timeout, kUnavailable once Close()d and drained.
  util::Result<Endpoint> Accept(int64_t timeout_us = 5'000'000);

  void Close();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Endpoint> pending_;
  bool closed_ = false;
  NetworkCostModel cost_;
};

}  // namespace mvtee::transport
