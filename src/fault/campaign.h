// Attack-campaign driver: reproduces the security-analysis experiments
// (Table 1 and §6.5) end to end — inject a vulnerability class into the
// variants that use the "vulnerable library", run MVX inference, and
// report whether the attack was detected and whether any wrong output
// escaped to the user.
#pragma once

#include "core/monitor.h"
#include "fault/injectors.h"
#include "graph/ir.h"
#include "util/status.h"

namespace mvtee::fault {

struct CampaignOptions {
  VulnClass cls = VulnClass::kOutOfBounds;
  FaultEffect effect = FaultEffect::kCorruptSilent;  // see DefaultEffect
  // The "vulnerable library": variants whose executor uses this GEMM
  // backend carry the bug (FrameFlip-style library targeting).
  runtime::GemmBackend vulnerable_gemm = runtime::GemmBackend::kBlocked;
  int num_partitions = 3;
  int variants_per_stage = 3;
  int num_batches = 2;
  uint64_t seed = 1;
  core::VotePolicy vote = core::VotePolicy::kMajority;
  core::ResponsePolicy response = core::ResponsePolicy::kContinueWithWinner;
};

struct CampaignReport {
  VulnClass cls;
  bool fault_fired = false;        // the injected bug actually executed
  bool detected = false;           // monitor observed divergence/failure
  bool wrong_output_released = false;  // an inconsistent output returned OK
  bool service_survived = false;   // batches still completed
  uint64_t divergences = 0;
  uint64_t variant_failures = 0;
};

util::Result<CampaignReport> RunVulnerabilityCampaign(
    const graph::Graph& model, const CampaignOptions& options);

}  // namespace mvtee::fault
