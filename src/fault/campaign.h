// Attack-campaign driver: reproduces the security-analysis experiments
// (Table 1 and §6.5) end to end — inject a vulnerability class into the
// variants that use the "vulnerable library", run MVX inference, and
// report whether the attack was detected and whether any wrong output
// escaped to the user.
#pragma once

#include "core/monitor.h"
#include "fault/injectors.h"
#include "graph/ir.h"
#include "util/status.h"

namespace mvtee::fault {

struct CampaignOptions {
  VulnClass cls = VulnClass::kOutOfBounds;
  FaultEffect effect = FaultEffect::kCorruptSilent;  // see DefaultEffect
  // The "vulnerable library": variants whose executor uses this GEMM
  // backend carry the bug (FrameFlip-style library targeting).
  runtime::GemmBackend vulnerable_gemm = runtime::GemmBackend::kBlocked;
  int num_partitions = 3;
  int variants_per_stage = 3;
  int num_batches = 2;
  uint64_t seed = 1;
  core::VotePolicy vote = core::VotePolicy::kMajority;
  core::ReactionPolicy reaction = core::ReactionPolicy::ContinueWithWinner();
};

struct CampaignReport {
  VulnClass cls;
  bool fault_fired = false;        // the injected bug actually executed
  bool detected = false;           // monitor observed divergence/failure
  bool wrong_output_released = false;  // an inconsistent output returned OK
  bool service_survived = false;   // batches still completed
  uint64_t divergences = 0;
  uint64_t variant_failures = 0;
};

util::Result<CampaignReport> RunVulnerabilityCampaign(
    const graph::Graph& model, const CampaignOptions& options);

// Lifecycle campaign (§4.3 reaction loop): one variant carries a
// transient WindowedFault (crash or tamper) that fires early and then
// goes quiet. Under ReactionPolicy::QuarantineAndRestart the run is
// expected to complete every batch with zero aborts, quarantine the
// faulty variant, re-bootstrap it through the attested two-stage
// protocol and re-admit it after probation. A persistent fault
// (`fire_limit < 0`) exercises the retirement path instead.
struct LifecycleCampaignOptions {
  FaultEffect effect = FaultEffect::kCorruptSilent;
  int fire_limit = 1;  // firings before the fault clears; <0 = persistent
  int num_partitions = 2;
  int variants_per_stage = 3;
  int num_batches = 6;
  uint64_t seed = 1;
  // Which slot carries the fault ("s<stage>.v<index>").
  std::string target_variant = "s0.v1";
  core::ReactionPolicy reaction =
      core::ReactionPolicy::Builder()
          .QuarantineAndRestart()
          .DissentThreshold(1)
          .ProbationBatches(2)
          .RetryBudget(2)
          .Backoff(/*initial_us=*/0, /*multiplier=*/2.0, /*max_us=*/1'000)
          .Build();
};

struct LifecycleCampaignReport {
  bool fault_fired = false;
  int completed_batches = 0;
  bool aborted = false;  // any Run() returned an error
  std::string abort_message;
  // Supervisor totals after the run.
  uint64_t quarantines = 0;
  uint64_t readmissions = 0;
  uint64_t retirements = 0;
  size_t spawned_total = 0;  // initial panel + lifecycle respawns
  bool wrong_output_released = false;
  std::vector<core::Supervisor::SlotInfo> slots;  // final lifecycle table
};

util::Result<LifecycleCampaignReport> RunLifecycleCampaign(
    const graph::Graph& model, const LifecycleCampaignOptions& options);

}  // namespace mvtee::fault
