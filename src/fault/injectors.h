// Fault-injection substrate (security experiments, Table 1 & §6.5).
//
// Substitution note (DESIGN.md §2): real attacks (crafted inputs against
// ML-framework CVEs, Rowhammer/Plundervolt bit flips, FrameFlip's
// code-level BLAS faults) are modeled as controllable injectors that hit
// the same decision points: a vulnerability exists only in some code
// paths, fires during inference, and either crashes the variant (DoS),
// silently corrupts data, or produces incorrect results. The MVX
// detection chain downstream (divergence → vote → response) is the real
// one.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "runtime/executor.h"
#include "util/rng.h"

namespace mvtee::fault {

// TensorFlow-CVE-style vulnerability classes (paper Table 1).
enum class VulnClass : uint8_t {
  kOutOfBounds = 0,   // OOB read/write
  kNullPointer,       // UNP: uninitialized / null pointers
  kFloatingPoint,     // FPE
  kIntegerOverflow,   // IO
  kUseAfterFree,      // UAF
  kAssertFailure,     // ACF
};

std::string_view VulnClassName(VulnClass cls);

// What the fired vulnerability does inside the vulnerable variant.
enum class FaultEffect : uint8_t {
  kCrash = 0,        // DoS: the variant dies / errors out
  kCorruptSilent,    // data corruption: outputs perturbed
  kIncorrectResult,  // wrong-but-plausible outputs
  kNonFinite,        // NaN/Inf poisoning
};

// Default effect for each class (how these CVE classes typically
// manifest per Table 1's impact column).
FaultEffect DefaultEffect(VulnClass cls);

// A software vulnerability present only in specific implementations:
// the fault fires only if the attached executor matches the vulnerable
// configuration, and is *trapped* (turned into a clean crash) when the
// variant is bounds-checked/hardened and the class is memory-safety.
struct VulnerabilitySpec {
  VulnClass cls = VulnClass::kOutOfBounds;
  FaultEffect effect = FaultEffect::kCorruptSilent;
  // Which implementations carry the bug. Unset = all.
  std::optional<runtime::GemmBackend> vulnerable_gemm;
  std::optional<std::string> vulnerable_runtime;  // ExecutorConfig::name
  // Restrict to an op type (e.g. the buggy kernel). Unset = first
  // eligible node.
  std::optional<graph::OpType> target_op;
  uint64_t seed = 1;
  double corruption_magnitude = 40.0;
};

class VulnerabilityFault : public runtime::FaultHook {
 public:
  explicit VulnerabilityFault(VulnerabilitySpec spec);

  void OnAttach(const runtime::ExecutorConfig& config) override;
  util::Status OnNodeStart(const graph::Node& node) override;
  void OnNodeComplete(const graph::Node& node, tensor::Tensor& out) override;

  bool armed() const { return armed_; }
  bool trapped_by_hardening() const { return trapped_; }
  uint64_t fire_count() const { return fires_; }

 private:
  bool Matches(const graph::Node& node) const;

  VulnerabilitySpec spec_;
  util::Rng rng_;
  bool armed_ = false;    // executor matches the vulnerable config
  bool trapped_ = false;  // hardened build turns the bug into a trap
  uint64_t fires_ = 0;
};

// Runtime bit-flip fault (Rowhammer/FrameFlip analog at the data level):
// flips a chosen bit of one output element of matching nodes.
struct BitFlipSpec {
  std::optional<graph::OpType> target_op;  // unset = every node
  int bit = 30;            // high-exponent bits cause Terminal-Brain-Damage
  int64_t element = 0;     // which element of the output
  int fire_every = 1;      // fire on every Nth matching node execution
  std::optional<runtime::GemmBackend> vulnerable_gemm;  // backend-targeted
};

class BitFlipFault : public runtime::FaultHook {
 public:
  explicit BitFlipFault(BitFlipSpec spec) : spec_(spec) {}
  void OnAttach(const runtime::ExecutorConfig& config) override;
  void OnNodeComplete(const graph::Node& node, tensor::Tensor& out) override;
  uint64_t fire_count() const { return fires_; }

 private:
  BitFlipSpec spec_;
  bool armed_ = true;
  uint64_t seen_ = 0;
  uint64_t fires_ = 0;
};

// Transient compromise for lifecycle experiments: applies `effect` to
// matching node executions only while the fire budget lasts, then goes
// permanently quiet. The hook object survives a variant respawn (the
// host re-attaches the same shared hook to the replacement instance),
// so the budget spans the variant's whole lifecycle: a re-provisioned
// instance whose budget is spent runs clean — the shape the
// supervisor's probation/readmission path expects. `fire_limit < 0`
// models a persistent compromise that survives re-provisioning (the
// retirement path).
struct WindowedFaultSpec {
  FaultEffect effect = FaultEffect::kCorruptSilent;
  std::optional<graph::OpType> target_op;  // unset = first conv/gemm
  int fire_limit = 1;
  double corruption_magnitude = 40.0;
  uint64_t seed = 7;
};

class WindowedFault : public runtime::FaultHook {
 public:
  explicit WindowedFault(WindowedFaultSpec spec);
  util::Status OnNodeStart(const graph::Node& node) override;
  void OnNodeComplete(const graph::Node& node, tensor::Tensor& out) override;
  uint64_t fire_count() const { return fires_; }

 private:
  bool Matches(const graph::Node& node) const;
  bool Exhausted() const;

  WindowedFaultSpec spec_;
  util::Rng rng_;
  uint64_t fires_ = 0;
};

// Model-targeted weight attack: flips `num_flips` random bits across a
// graph's initializers (offline/at-rest analog of bit-flip weight
// attacks). Returns the number of bits actually flipped.
size_t FlipRandomWeightBits(graph::Graph& graph, int num_flips,
                            uint64_t seed, int max_bit = 30);

}  // namespace mvtee::fault
