#include "fault/campaign.h"

#include "core/offline.h"
#include "core/variant_host.h"
#include "runtime/executor.h"

namespace mvtee::fault {

using core::OfflineBundle;
using core::OfflineOptions;
using tensor::Tensor;

util::Result<CampaignReport> RunVulnerabilityCampaign(
    const graph::Graph& model, const CampaignOptions& options) {
  OfflineOptions offline;
  offline.num_partitions = options.num_partitions;
  offline.partition_seed = options.seed;
  offline.key_seed = options.seed + 1;
  offline.pool.variants_per_stage = options.variants_per_stage;
  offline.pool.seed = options.seed + 2;
  MVTEE_ASSIGN_OR_RETURN(OfflineBundle bundle,
                         core::RunOfflineTool(model, offline));

  tee::SimulatedCpu cpu{
      tee::SimulatedCpu::Options{.hardware_key_seed = options.seed + 3}};
  core::VariantHost host(&cpu, bundle.store);

  // The vulnerability lives in a shared library: every variant gets the
  // hook, but it arms only where the executor config matches the
  // vulnerable implementation.
  std::vector<std::shared_ptr<VulnerabilityFault>> hooks;
  for (const auto& entry : bundle.variants) {
    VulnerabilitySpec spec;
    spec.cls = options.cls;
    spec.effect = options.effect;
    spec.vulnerable_gemm = options.vulnerable_gemm;
    spec.seed = options.seed + 17;
    auto hook = std::make_shared<VulnerabilityFault>(spec);
    hooks.push_back(hook);
    host.SetFaultHook(entry.variant_id, hook);
  }

  core::MonitorConfig config;
  config.vote = options.vote;
  config.reaction = options.reaction;
  MVTEE_ASSIGN_OR_RETURN(auto monitor, core::Monitor::Create(&cpu, config));
  MVTEE_RETURN_IF_ERROR(monitor->Initialize(
      bundle, core::MvxSelection::Uniform(bundle,
                                          options.variants_per_stage),
      host));

  // Reference for ground truth.
  MVTEE_ASSIGN_OR_RETURN(
      auto reference,
      runtime::Executor::Create(model, runtime::ReferenceExecutorConfig()));

  CampaignReport report;
  report.cls = options.cls;

  util::Rng rng(options.seed + 29);
  int completed = 0;
  for (int b = 0; b < options.num_batches; ++b) {
    std::vector<Tensor> inputs;
    for (graph::NodeId in : model.inputs()) {
      inputs.push_back(
          Tensor::RandomUniform(model.input_shape(in), rng, -1.0f, 1.0f));
    }
    auto out = monitor->Run({inputs});
    if (out.ok()) {
      ++completed;
      MVTEE_ASSIGN_OR_RETURN(auto expected, reference->Run(inputs));
      for (size_t i = 0; i < expected.size(); ++i) {
        if (tensor::CosineSimilarity((*out)[0][i], expected[i]) < 0.99) {
          report.wrong_output_released = true;
        }
      }
    } else if (out.status().code() ==
               util::StatusCode::kDivergenceDetected) {
      report.detected = true;
    } else {
      return out.status();  // infrastructure error, not part of the game
    }
  }

  auto stats = monitor->ConsumeStats();
  report.divergences = stats.divergences;
  report.variant_failures = stats.variant_failures;
  if (stats.divergences > 0 || stats.late_divergences > 0 ||
      stats.variant_failures > 0) {
    report.detected = true;
  }
  report.service_survived = completed == options.num_batches;
  for (const auto& hook : hooks) {
    if (hook->fire_count() > 0) report.fault_fired = true;
  }
  MVTEE_RETURN_IF_ERROR(monitor->Shutdown());
  host.JoinAll();
  return report;
}

util::Result<LifecycleCampaignReport> RunLifecycleCampaign(
    const graph::Graph& model, const LifecycleCampaignOptions& options) {
  OfflineOptions offline;
  offline.num_partitions = options.num_partitions;
  offline.partition_seed = options.seed;
  offline.key_seed = options.seed + 1;
  offline.pool.variants_per_stage = options.variants_per_stage;
  offline.pool.seed = options.seed + 2;
  MVTEE_ASSIGN_OR_RETURN(OfflineBundle bundle,
                         core::RunOfflineTool(model, offline));

  tee::SimulatedCpu cpu{
      tee::SimulatedCpu::Options{.hardware_key_seed = options.seed + 3}};
  core::VariantHost host(&cpu, bundle.store);

  // One compromised slot; the shared hook survives respawn, so its fire
  // budget spans the variant's whole lifecycle.
  WindowedFaultSpec spec;
  spec.effect = options.effect;
  spec.fire_limit = options.fire_limit;
  spec.seed = options.seed + 17;
  auto hook = std::make_shared<WindowedFault>(spec);
  host.SetFaultHook(options.target_variant, hook);

  core::MonitorConfig config;
  config.reaction = options.reaction;
  MVTEE_ASSIGN_OR_RETURN(auto monitor, core::Monitor::Create(&cpu, config));
  MVTEE_RETURN_IF_ERROR(monitor->Initialize(
      bundle,
      core::MvxSelection::Uniform(bundle, options.variants_per_stage),
      host));

  MVTEE_ASSIGN_OR_RETURN(
      auto reference,
      runtime::Executor::Create(model, runtime::ReferenceExecutorConfig()));

  LifecycleCampaignReport report;
  util::Rng rng(options.seed + 29);
  for (int b = 0; b < options.num_batches; ++b) {
    std::vector<Tensor> inputs;
    for (graph::NodeId in : model.inputs()) {
      inputs.push_back(
          Tensor::RandomUniform(model.input_shape(in), rng, -1.0f, 1.0f));
    }
    // One batch per Run call: the supervisor's quarantine/rebootstrap/
    // probation machinery spans calls (it lives on the monitor), and the
    // per-call verdict tells us exactly which batch aborted, if any.
    auto out = monitor->Run({inputs});
    if (!out.ok()) {
      report.aborted = true;
      report.abort_message = out.status().ToString();
      continue;
    }
    ++report.completed_batches;
    MVTEE_ASSIGN_OR_RETURN(auto expected, reference->Run(inputs));
    for (size_t i = 0; i < expected.size(); ++i) {
      if (tensor::CosineSimilarity((*out)[0][i], expected[i]) < 0.99) {
        report.wrong_output_released = true;
      }
    }
  }

  if (const core::Supervisor* sup = monitor->supervisor()) {
    report.quarantines = sup->quarantines_total();
    report.readmissions = sup->readmissions_total();
    report.retirements = sup->retirements_total();
    report.slots = sup->Snapshot();
  }
  report.spawned_total = host.spawned_total();
  report.fault_fired = hook->fire_count() > 0;
  MVTEE_RETURN_IF_ERROR(monitor->Shutdown());
  host.JoinAll();
  return report;
}

}  // namespace mvtee::fault
