#include "fault/injectors.h"

#include <cmath>
#include <cstring>

namespace mvtee::fault {

using graph::Node;
using graph::OpType;
using tensor::Tensor;

std::string_view VulnClassName(VulnClass cls) {
  switch (cls) {
    case VulnClass::kOutOfBounds: return "OOB";
    case VulnClass::kNullPointer: return "UNP";
    case VulnClass::kFloatingPoint: return "FPE";
    case VulnClass::kIntegerOverflow: return "IO";
    case VulnClass::kUseAfterFree: return "UAF";
    case VulnClass::kAssertFailure: return "ACF";
  }
  return "?";
}

FaultEffect DefaultEffect(VulnClass cls) {
  switch (cls) {
    case VulnClass::kOutOfBounds: return FaultEffect::kCorruptSilent;
    case VulnClass::kNullPointer: return FaultEffect::kCrash;
    case VulnClass::kFloatingPoint: return FaultEffect::kNonFinite;
    case VulnClass::kIntegerOverflow: return FaultEffect::kIncorrectResult;
    case VulnClass::kUseAfterFree: return FaultEffect::kCorruptSilent;
    case VulnClass::kAssertFailure: return FaultEffect::kCrash;
  }
  return FaultEffect::kCrash;
}

VulnerabilityFault::VulnerabilityFault(VulnerabilitySpec spec)
    : spec_(spec), rng_(spec.seed) {}

void VulnerabilityFault::OnAttach(const runtime::ExecutorConfig& config) {
  armed_ = true;
  if (spec_.vulnerable_gemm.has_value() &&
      config.gemm != *spec_.vulnerable_gemm) {
    armed_ = false;
  }
  if (spec_.vulnerable_runtime.has_value() &&
      config.name != *spec_.vulnerable_runtime) {
    armed_ = false;
  }
  // Hardened (sanitizer-style) builds trap memory-safety exploits
  // instead of letting them corrupt state: the variant crashes cleanly.
  trapped_ = false;
  if (armed_ && config.bounds_checked &&
      (spec_.cls == VulnClass::kOutOfBounds ||
       spec_.cls == VulnClass::kUseAfterFree ||
       spec_.cls == VulnClass::kNullPointer)) {
    trapped_ = true;
  }
}

bool VulnerabilityFault::Matches(const Node& node) const {
  if (!spec_.target_op.has_value()) {
    // First compute-heavy node: conv or gemm.
    return node.op == OpType::kConv2d || node.op == OpType::kGemm;
  }
  return node.op == *spec_.target_op;
}

util::Status VulnerabilityFault::OnNodeStart(const Node& node) {
  if (!armed_ || !Matches(node)) return util::OkStatus();
  if (trapped_) {
    ++fires_;
    return util::Aborted(std::string("sanitizer trap: ") +
                         std::string(VulnClassName(spec_.cls)) +
                         " exploit blocked in " + node.name);
  }
  if (spec_.effect == FaultEffect::kCrash) {
    ++fires_;
    return util::Aborted(std::string(VulnClassName(spec_.cls)) +
                         " crash in " + node.name);
  }
  return util::OkStatus();
}

void VulnerabilityFault::OnNodeComplete(const Node& node, Tensor& out) {
  if (!armed_ || trapped_ || Matches(node) == false) return;
  if (out.num_elements() == 0) return;
  switch (spec_.effect) {
    case FaultEffect::kCrash:
      return;  // handled in OnNodeStart
    case FaultEffect::kCorruptSilent: {
      // OOB-write analog: clobber a random span of the output buffer.
      ++fires_;
      int64_t start = static_cast<int64_t>(
          rng_.UniformU64(static_cast<uint64_t>(out.num_elements())));
      int64_t len = std::min<int64_t>(out.num_elements() - start, 8);
      for (int64_t i = 0; i < len; ++i) {
        out.data()[start + i] =
            static_cast<float>(spec_.corruption_magnitude) *
            (rng_.UniformFloat(-1.0f, 1.0f));
      }
      return;
    }
    case FaultEffect::kIncorrectResult: {
      // Integer-overflow analog: values wrap into the wrong range.
      ++fires_;
      for (int64_t i = 0; i < out.num_elements(); i += 16) {
        out.data()[i] = -out.data()[i] * 3.0f;
      }
      return;
    }
    case FaultEffect::kNonFinite: {
      ++fires_;
      out.data()[0] = std::numeric_limits<float>::quiet_NaN();
      if (out.num_elements() > 1) {
        out.data()[1] = std::numeric_limits<float>::infinity();
      }
      return;
    }
  }
}

WindowedFault::WindowedFault(WindowedFaultSpec spec)
    : spec_(spec), rng_(spec.seed) {}

bool WindowedFault::Matches(const Node& node) const {
  if (!spec_.target_op.has_value()) {
    return node.op == OpType::kConv2d || node.op == OpType::kGemm;
  }
  return node.op == *spec_.target_op;
}

bool WindowedFault::Exhausted() const {
  return spec_.fire_limit >= 0 &&
         fires_ >= static_cast<uint64_t>(spec_.fire_limit);
}

util::Status WindowedFault::OnNodeStart(const Node& node) {
  if (Exhausted() || !Matches(node)) return util::OkStatus();
  if (spec_.effect == FaultEffect::kCrash) {
    ++fires_;
    return util::Aborted("transient crash in " + node.name);
  }
  return util::OkStatus();
}

void WindowedFault::OnNodeComplete(const Node& node, Tensor& out) {
  if (Exhausted() || !Matches(node)) return;
  if (out.num_elements() == 0) return;
  switch (spec_.effect) {
    case FaultEffect::kCrash:
      return;  // handled in OnNodeStart
    case FaultEffect::kCorruptSilent: {
      ++fires_;
      int64_t start = static_cast<int64_t>(
          rng_.UniformU64(static_cast<uint64_t>(out.num_elements())));
      int64_t len = std::min<int64_t>(out.num_elements() - start, 8);
      for (int64_t i = 0; i < len; ++i) {
        out.data()[start + i] =
            static_cast<float>(spec_.corruption_magnitude) *
            (rng_.UniformFloat(-1.0f, 1.0f));
      }
      return;
    }
    case FaultEffect::kIncorrectResult: {
      ++fires_;
      for (int64_t i = 0; i < out.num_elements(); i += 16) {
        out.data()[i] = -out.data()[i] * 3.0f;
      }
      return;
    }
    case FaultEffect::kNonFinite: {
      ++fires_;
      out.data()[0] = std::numeric_limits<float>::quiet_NaN();
      if (out.num_elements() > 1) {
        out.data()[1] = std::numeric_limits<float>::infinity();
      }
      return;
    }
  }
}

void BitFlipFault::OnAttach(const runtime::ExecutorConfig& config) {
  armed_ = !spec_.vulnerable_gemm.has_value() ||
           config.gemm == *spec_.vulnerable_gemm;
}

void BitFlipFault::OnNodeComplete(const Node& node, Tensor& out) {
  if (!armed_ || out.num_elements() == 0) return;
  if (spec_.target_op.has_value() && node.op != *spec_.target_op) return;
  ++seen_;
  if (spec_.fire_every <= 0 ||
      seen_ % static_cast<uint64_t>(spec_.fire_every) != 0) {
    return;
  }
  int64_t idx = spec_.element % out.num_elements();
  uint32_t bits;
  std::memcpy(&bits, &out.data()[idx], sizeof(bits));
  bits ^= (1u << (spec_.bit & 31));
  std::memcpy(&out.data()[idx], &bits, sizeof(bits));
  ++fires_;
}

size_t FlipRandomWeightBits(graph::Graph& graph, int num_flips, uint64_t seed,
                            int max_bit) {
  util::Rng rng(seed);
  // Collect mutable initializer names first (map iteration is stable).
  std::vector<std::string> names;
  for (const auto& [name, t] : graph.initializers()) {
    if (t.num_elements() > 0) names.push_back(name);
  }
  if (names.empty()) return 0;
  size_t flipped = 0;
  for (int i = 0; i < num_flips; ++i) {
    const std::string& name =
        names[rng.UniformU64(names.size())];
    Tensor* t = graph.MutableInitializer(name);
    int64_t idx = static_cast<int64_t>(
        rng.UniformU64(static_cast<uint64_t>(t->num_elements())));
    int bit = static_cast<int>(rng.UniformU64(static_cast<uint64_t>(
                  std::max(1, max_bit + 1))));
    uint32_t bits;
    std::memcpy(&bits, &t->data()[idx], sizeof(bits));
    bits ^= (1u << bit);
    std::memcpy(&t->data()[idx], &bits, sizeof(bits));
    ++flipped;
  }
  return flipped;
}

}  // namespace mvtee::fault
