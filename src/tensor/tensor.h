// Dense float32 tensor with NCHW-style row-major layout.
//
// This is the single value type flowing through the inference runtime,
// the monitor checkpoints and the inter-TEE transport. Kept deliberately
// small: shape + contiguous float storage + (de)serialization + the
// consistency metrics MVTEE's checkpoint verifier uses.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/status.h"

namespace mvtee::tensor {

// Shape: list of non-negative dimensions. Rank 0 = scalar (1 element).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int64_t rank() const { return static_cast<int64_t>(dims_.size()); }
  int64_t dim(int64_t i) const {
    MVTEE_CHECK(i >= 0 && i < rank());
    return dims_[static_cast<size_t>(i)];
  }
  const std::vector<int64_t>& dims() const { return dims_; }

  int64_t num_elements() const {
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
  }

  std::string ToString() const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.dims_ == b.dims_;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  std::vector<int64_t> dims_;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.num_elements()), 0.0f) {}
  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    MVTEE_CHECK(static_cast<int64_t>(data_.size()) == shape_.num_elements());
  }

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value);
  // Uniform in [lo, hi).
  static Tensor RandomUniform(Shape shape, util::Rng& rng, float lo = -1.0f,
                              float hi = 1.0f);
  // N(0, stddev) — used for synthetic weights (He/Xavier style scaling is
  // applied by the model zoo).
  static Tensor RandomNormal(Shape shape, util::Rng& rng,
                             float stddev = 1.0f);

  const Shape& shape() const { return shape_; }
  int64_t num_elements() const { return shape_.num_elements(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& at(int64_t i) { return data_[static_cast<size_t>(i)]; }
  float at(int64_t i) const { return data_[static_cast<size_t>(i)]; }

  // 4-D accessors for NCHW tensors.
  float& at4(int64_t n, int64_t c, int64_t h, int64_t w);
  float at4(int64_t n, int64_t c, int64_t h, int64_t w) const;

  // 2-D accessor for matrices.
  float& at2(int64_t r, int64_t c);
  float at2(int64_t r, int64_t c) const;

  size_t byte_size() const { return data_.size() * sizeof(float); }

  util::Bytes Serialize() const;
  static util::Result<Tensor> Deserialize(util::ByteSpan data);

  friend bool operator==(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  Shape shape_;
  std::vector<float> data_;
};

// ---- Consistency metrics (the checkpoint verifier's vocabulary, §5.2) ----

// Cosine similarity in [-1, 1]; returns 1 for two all-zero tensors and 0
// when exactly one is all-zero. Requires equal shapes.
double CosineSimilarity(const Tensor& a, const Tensor& b);

// Mean squared error.
double MeanSquaredError(const Tensor& a, const Tensor& b);

// max_i |a_i - b_i|.
double MaxAbsDiff(const Tensor& a, const Tensor& b);

// np.testing.assert_allclose semantics: |a-b| <= atol + rtol*|b| per
// element; false if shapes differ or any element is NaN.
bool AllClose(const Tensor& a, const Tensor& b, double rtol = 1e-5,
              double atol = 1e-8);

// True if any element is NaN or Inf — a cheap "crashed math" detector.
bool HasNonFinite(const Tensor& t);

}  // namespace mvtee::tensor
