// Dense float32 tensor with NCHW-style row-major layout.
//
// This is the single value type flowing through the inference runtime,
// the monitor checkpoints and the inter-TEE transport. Kept deliberately
// small: shape + contiguous float storage + (de)serialization + the
// consistency metrics MVTEE's checkpoint verifier uses.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/status.h"

namespace mvtee::tensor {

// Shape: list of non-negative dimensions. Rank 0 = scalar (1 element).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int64_t rank() const { return static_cast<int64_t>(dims_.size()); }
  int64_t dim(int64_t i) const {
    MVTEE_CHECK(i >= 0 && i < rank());
    return dims_[static_cast<size_t>(i)];
  }
  const std::vector<int64_t>& dims() const { return dims_; }

  int64_t num_elements() const {
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
  }

  std::string ToString() const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.dims_ == b.dims_;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  std::vector<int64_t> dims_;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.num_elements()), 0.0f) {}
  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    MVTEE_CHECK(static_cast<int64_t>(data_.size()) == shape_.num_elements());
  }

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value);
  // Uniform in [lo, hi).
  static Tensor RandomUniform(Shape shape, util::Rng& rng, float lo = -1.0f,
                              float hi = 1.0f);
  // N(0, stddev) — used for synthetic weights (He/Xavier style scaling is
  // applied by the model zoo).
  static Tensor RandomNormal(Shape shape, util::Rng& rng,
                             float stddev = 1.0f);

  // Non-owning view over external float storage, kept alive by
  // `keepalive` (typically a PooledBuffer share holding the opened
  // record). Reads go straight to the aliased memory; the first
  // mutating access copies into owned storage (copy-on-write).
  static Tensor View(Shape shape, const float* data, size_t count,
                     std::shared_ptr<const void> keepalive);

  // Reinterprets `t`'s elements under a new shape without copying:
  // views stay views (sharing the keepalive), owned storage is moved.
  static Tensor Reshape(Tensor t, Shape new_shape);

  const Shape& shape() const { return shape_; }
  int64_t num_elements() const { return shape_.num_elements(); }
  bool empty() const { return storage_size() == 0; }

  bool is_view() const { return view_ != nullptr; }
  // Number of stored floats (== num_elements() for any constructed
  // tensor; distinct from vec().size(), which is zero for views).
  size_t storage_size() const { return view_ ? view_size_ : data_.size(); }

  float* data() {
    EnsureOwned();
    return data_.data();
  }
  const float* data() const { return view_ ? view_ : data_.data(); }
  std::vector<float>& vec() {
    EnsureOwned();
    return data_;
  }
  const std::vector<float>& vec() const {
    // Views have no backing vector; use data()/storage_size() on read
    // paths that must stay zero-copy.
    MVTEE_CHECK(view_ == nullptr);
    return data_;
  }

  float& at(int64_t i) {
    EnsureOwned();
    return data_[static_cast<size_t>(i)];
  }
  float at(int64_t i) const { return data()[static_cast<size_t>(i)]; }

  // 4-D accessors for NCHW tensors.
  float& at4(int64_t n, int64_t c, int64_t h, int64_t w);
  float at4(int64_t n, int64_t c, int64_t h, int64_t w) const;

  // 2-D accessor for matrices.
  float& at2(int64_t r, int64_t c);
  float at2(int64_t r, int64_t c) const;

  size_t byte_size() const { return storage_size() * sizeof(float); }

  util::Bytes Serialize() const;
  // Exact size of Serialize()'s output; lets callers pre-size one
  // pooled buffer for a whole message.
  size_t SerializedSize() const;
  // Appends the serialized form to `out` (single pass, no temporary).
  void SerializeInto(util::Bytes& out) const;

  static util::Result<Tensor> Deserialize(util::ByteSpan data);
  // Zero-copy deserialize: the result aliases `data`'s float payload
  // (pinned by `keepalive`) when it is 4-byte aligned, and falls back
  // to an owned copy otherwise.
  static util::Result<Tensor> DeserializeView(
      util::ByteSpan data, std::shared_ptr<const void> keepalive);

  friend bool operator==(const Tensor& a, const Tensor& b);

 private:
  void EnsureOwned();

  Shape shape_;
  std::vector<float> data_;
  // View state: when view_ is set, data_ is empty and keepalive_ pins
  // the aliased storage.
  const float* view_ = nullptr;
  size_t view_size_ = 0;
  std::shared_ptr<const void> keepalive_;
};

// ---- Consistency metrics (the checkpoint verifier's vocabulary, §5.2) ----

// Cosine similarity in [-1, 1]; returns 1 for two all-zero tensors and 0
// when exactly one is all-zero. Requires equal shapes.
double CosineSimilarity(const Tensor& a, const Tensor& b);

// Mean squared error.
double MeanSquaredError(const Tensor& a, const Tensor& b);

// max_i |a_i - b_i|.
double MaxAbsDiff(const Tensor& a, const Tensor& b);

// np.testing.assert_allclose semantics: |a-b| <= atol + rtol*|b| per
// element; false if shapes differ or any element is NaN.
bool AllClose(const Tensor& a, const Tensor& b, double rtol = 1e-5,
              double atol = 1e-8);

// True if any element is NaN or Inf — a cheap "crashed math" detector.
bool HasNonFinite(const Tensor& t);

}  // namespace mvtee::tensor
