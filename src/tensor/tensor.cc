#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

namespace mvtee::tensor {

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ",";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.data_.begin(), t.data_.end(), value);
  return t;
}

Tensor Tensor::RandomUniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.UniformFloat(lo, hi);
  return t;
}

Tensor Tensor::RandomNormal(Shape shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.Normal()) * stddev;
  return t;
}

float& Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) {
  MVTEE_CHECK(shape_.rank() == 4);
  const int64_t C = shape_.dim(1), H = shape_.dim(2), W = shape_.dim(3);
  return data_[static_cast<size_t>(((n * C + c) * H + h) * W + w)];
}

float Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

float& Tensor::at2(int64_t r, int64_t c) {
  MVTEE_CHECK(shape_.rank() == 2);
  return data_[static_cast<size_t>(r * shape_.dim(1) + c)];
}

float Tensor::at2(int64_t r, int64_t c) const {
  return const_cast<Tensor*>(this)->at2(r, c);
}

util::Bytes Tensor::Serialize() const {
  util::Bytes out;
  out.reserve(16 + shape_.rank() * 8 + byte_size());
  util::AppendU32(out, 0x4d565431);  // "MVT1"
  util::AppendU32(out, static_cast<uint32_t>(shape_.rank()));
  for (int64_t d : shape_.dims()) {
    util::AppendU64(out, static_cast<uint64_t>(d));
  }
  util::AppendU64(out, static_cast<uint64_t>(data_.size()));
  // Bulk-copy float payload (little-endian host assumed; this is an
  // intra-deployment wire format, not an archival one).
  size_t off = out.size();
  out.resize(off + byte_size());
  std::memcpy(out.data() + off, data_.data(), byte_size());
  return out;
}

util::Result<Tensor> Tensor::Deserialize(util::ByteSpan data) {
  util::ByteReader reader(data);
  uint32_t magic = 0, rank = 0;
  if (!reader.ReadU32(magic) || magic != 0x4d565431) {
    return util::InvalidArgument("bad tensor magic");
  }
  if (!reader.ReadU32(rank) || rank > 8) {
    return util::InvalidArgument("bad tensor rank");
  }
  std::vector<int64_t> dims(rank);
  for (auto& d : dims) {
    uint64_t v;
    if (!reader.ReadU64(v)) return util::InvalidArgument("truncated dims");
    if (v > (1ULL << 32)) return util::InvalidArgument("dim too large");
    d = static_cast<int64_t>(v);
  }
  Shape shape(std::move(dims));
  uint64_t count;
  if (!reader.ReadU64(count)) return util::InvalidArgument("truncated count");
  if (static_cast<int64_t>(count) != shape.num_elements()) {
    return util::InvalidArgument("element count mismatch");
  }
  if (reader.remaining() != count * sizeof(float)) {
    return util::InvalidArgument("payload size mismatch");
  }
  std::vector<float> values(count);
  std::memcpy(values.data(), data.data() + reader.position(),
              count * sizeof(float));
  return Tensor(std::move(shape), std::move(values));
}

double CosineSimilarity(const Tensor& a, const Tensor& b) {
  MVTEE_CHECK(a.shape() == b.shape());
  double dot = 0, na = 0, nb = 0;
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    double x = a.at(i), y = b.at(i);
    dot += x * y;
    na += x * x;
    nb += y * y;
  }
  if (na == 0 && nb == 0) return 1.0;
  if (na == 0 || nb == 0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double MeanSquaredError(const Tensor& a, const Tensor& b) {
  MVTEE_CHECK(a.shape() == b.shape());
  if (a.num_elements() == 0) return 0.0;
  double sum = 0;
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    double d = static_cast<double>(a.at(i)) - b.at(i);
    sum += d * d;
  }
  return sum / static_cast<double>(a.num_elements());
}

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  MVTEE_CHECK(a.shape() == b.shape());
  double max_diff = 0;
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    double d = std::fabs(static_cast<double>(a.at(i)) - b.at(i));
    if (d > max_diff) max_diff = d;
  }
  return max_diff;
}

bool AllClose(const Tensor& a, const Tensor& b, double rtol, double atol) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    double x = a.at(i), y = b.at(i);
    if (std::isnan(x) || std::isnan(y)) return false;
    if (std::fabs(x - y) > atol + rtol * std::fabs(y)) return false;
  }
  return true;
}

bool HasNonFinite(const Tensor& t) {
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    if (!std::isfinite(t.at(i))) return true;
  }
  return false;
}

}  // namespace mvtee::tensor
