#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "util/dataplane_stats.h"

namespace mvtee::tensor {

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ",";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.data_.begin(), t.data_.end(), value);
  return t;
}

Tensor Tensor::RandomUniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.UniformFloat(lo, hi);
  return t;
}

Tensor Tensor::RandomNormal(Shape shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.Normal()) * stddev;
  return t;
}

float& Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) {
  MVTEE_CHECK(shape_.rank() == 4);
  EnsureOwned();
  const int64_t C = shape_.dim(1), H = shape_.dim(2), W = shape_.dim(3);
  return data_[static_cast<size_t>(((n * C + c) * H + h) * W + w)];
}

float Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
  MVTEE_CHECK(shape_.rank() == 4);
  const int64_t C = shape_.dim(1), H = shape_.dim(2), W = shape_.dim(3);
  return data()[static_cast<size_t>(((n * C + c) * H + h) * W + w)];
}

float& Tensor::at2(int64_t r, int64_t c) {
  MVTEE_CHECK(shape_.rank() == 2);
  EnsureOwned();
  return data_[static_cast<size_t>(r * shape_.dim(1) + c)];
}

float Tensor::at2(int64_t r, int64_t c) const {
  MVTEE_CHECK(shape_.rank() == 2);
  return data()[static_cast<size_t>(r * shape_.dim(1) + c)];
}

void Tensor::EnsureOwned() {
  if (view_ == nullptr) return;
  data_.assign(view_, view_ + view_size_);
  util::CountDataPlaneCopy(view_size_ * sizeof(float));
  view_ = nullptr;
  view_size_ = 0;
  keepalive_.reset();
}

Tensor Tensor::View(Shape shape, const float* data, size_t count,
                    std::shared_ptr<const void> keepalive) {
  MVTEE_CHECK(static_cast<int64_t>(count) == shape.num_elements());
  Tensor t;
  t.shape_ = std::move(shape);
  t.view_ = data;
  t.view_size_ = count;
  t.keepalive_ = std::move(keepalive);
  return t;
}

Tensor Tensor::Reshape(Tensor t, Shape new_shape) {
  MVTEE_CHECK(new_shape.num_elements() == t.num_elements());
  Tensor out;
  out.shape_ = std::move(new_shape);
  if (t.view_ != nullptr) {
    out.view_ = t.view_;
    out.view_size_ = t.view_size_;
    out.keepalive_ = std::move(t.keepalive_);
  } else {
    out.data_ = std::move(t.data_);
  }
  return out;
}

bool operator==(const Tensor& a, const Tensor& b) {
  return a.shape_ == b.shape_ && a.storage_size() == b.storage_size() &&
         std::equal(a.data(), a.data() + a.storage_size(), b.data());
}

size_t Tensor::SerializedSize() const {
  return 16 + static_cast<size_t>(shape_.rank()) * 8 + byte_size();
}

void Tensor::SerializeInto(util::Bytes& out) const {
  util::AppendU32(out, 0x4d565431);  // "MVT1"
  util::AppendU32(out, static_cast<uint32_t>(shape_.rank()));
  for (int64_t d : shape_.dims()) {
    util::AppendU64(out, static_cast<uint64_t>(d));
  }
  util::AppendU64(out, static_cast<uint64_t>(storage_size()));
  // Bulk-copy float payload (little-endian host assumed; this is an
  // intra-deployment wire format, not an archival one). This write is
  // the one unavoidable copy of the payload on the encode side.
  size_t off = out.size();
  out.resize(off + byte_size());
  if (byte_size() > 0) std::memcpy(out.data() + off, data(), byte_size());
  util::CountDataPlaneCopy(byte_size());
}

util::Bytes Tensor::Serialize() const {
  util::Bytes out;
  out.reserve(SerializedSize());
  SerializeInto(out);
  return out;
}

namespace {
// Shared header parse for Deserialize/DeserializeView; on success the
// reader is positioned at the float payload, whose size has been
// validated against the shape.
util::Result<Shape> ParseTensorHeader(util::ByteReader& reader,
                                      uint64_t& count) {
  uint32_t magic = 0, rank = 0;
  if (!reader.ReadU32(magic) || magic != 0x4d565431) {
    return util::InvalidArgument("bad tensor magic");
  }
  if (!reader.ReadU32(rank) || rank > 8) {
    return util::InvalidArgument("bad tensor rank");
  }
  std::vector<int64_t> dims(rank);
  for (auto& d : dims) {
    uint64_t v;
    if (!reader.ReadU64(v)) return util::InvalidArgument("truncated dims");
    if (v > (1ULL << 32)) return util::InvalidArgument("dim too large");
    d = static_cast<int64_t>(v);
  }
  Shape shape(std::move(dims));
  if (!reader.ReadU64(count)) return util::InvalidArgument("truncated count");
  if (static_cast<int64_t>(count) != shape.num_elements()) {
    return util::InvalidArgument("element count mismatch");
  }
  if (reader.remaining() != count * sizeof(float)) {
    return util::InvalidArgument("payload size mismatch");
  }
  return shape;
}
}  // namespace

util::Result<Tensor> Tensor::Deserialize(util::ByteSpan data) {
  util::ByteReader reader(data);
  uint64_t count = 0;
  MVTEE_ASSIGN_OR_RETURN(Shape shape, ParseTensorHeader(reader, count));
  std::vector<float> values(count);
  if (count > 0) {
    std::memcpy(values.data(), data.data() + reader.position(),
                count * sizeof(float));
  }
  util::CountDataPlaneCopy(count * sizeof(float));
  return Tensor(std::move(shape), std::move(values));
}

util::Result<Tensor> Tensor::DeserializeView(
    util::ByteSpan data, std::shared_ptr<const void> keepalive) {
  util::ByteReader reader(data);
  uint64_t count = 0;
  MVTEE_ASSIGN_OR_RETURN(Shape shape, ParseTensorHeader(reader, count));
  const uint8_t* payload = data.data() + reader.position();
  if (keepalive != nullptr &&
      reinterpret_cast<uintptr_t>(payload) % alignof(float) == 0) {
    return View(std::move(shape), reinterpret_cast<const float*>(payload),
                count, std::move(keepalive));
  }
  // Misaligned payload (or nothing pinning the buffer): fall back to an
  // owned copy rather than forming an unaligned float view.
  std::vector<float> values(count);
  if (count > 0) std::memcpy(values.data(), payload, count * sizeof(float));
  util::CountDataPlaneCopy(count * sizeof(float));
  return Tensor(std::move(shape), std::move(values));
}

double CosineSimilarity(const Tensor& a, const Tensor& b) {
  MVTEE_CHECK(a.shape() == b.shape());
  double dot = 0, na = 0, nb = 0;
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    double x = a.at(i), y = b.at(i);
    dot += x * y;
    na += x * x;
    nb += y * y;
  }
  if (na == 0 && nb == 0) return 1.0;
  if (na == 0 || nb == 0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double MeanSquaredError(const Tensor& a, const Tensor& b) {
  MVTEE_CHECK(a.shape() == b.shape());
  if (a.num_elements() == 0) return 0.0;
  double sum = 0;
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    double d = static_cast<double>(a.at(i)) - b.at(i);
    sum += d * d;
  }
  return sum / static_cast<double>(a.num_elements());
}

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  MVTEE_CHECK(a.shape() == b.shape());
  double max_diff = 0;
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    double d = std::fabs(static_cast<double>(a.at(i)) - b.at(i));
    if (d > max_diff) max_diff = d;
  }
  return max_diff;
}

bool AllClose(const Tensor& a, const Tensor& b, double rtol, double atol) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    double x = a.at(i), y = b.at(i);
    if (std::isnan(x) || std::isnan(y)) return false;
    if (std::fabs(x - y) > atol + rtol * std::fabs(y)) return false;
  }
  return true;
}

bool HasNonFinite(const Tensor& t) {
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    if (!std::isfinite(t.at(i))) return true;
  }
  return false;
}

}  // namespace mvtee::tensor
