#include "obs/exporters.h"

#include <cstdio>
#include <cstdlib>
#include <set>

#include "obs/json.h"

namespace mvtee::obs {

util::Status Exporter::WriteTo(const std::string& path) const {
  const std::string doc = Export();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Internal("cannot open '" + path + "' for export");
  }
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return util::Internal("short write exporting to '" + path + "'");
  }
  return util::OkStatus();
}

std::string ChromeTraceExporter::Export() const {
  return FromMerged(collector_->Merge());
}

std::string ChromeTraceExporter::FromMerged(
    const TraceCollector::MergedTrace& merged) {
  JsonValue::Array events;
  int64_t pid = 0;
  for (const auto& proc : merged.processes) {
    ++pid;  // Perfetto renders one process row per pid, 1-based
    {
      JsonValue::Object meta;
      meta.emplace_back("name", "process_name");
      meta.emplace_back("ph", "M");
      meta.emplace_back("pid", pid);
      meta.emplace_back("tid", 0);
      JsonValue::Object args;
      args.emplace_back("name", proc.process);
      meta.emplace_back("args", JsonValue(std::move(args)));
      events.push_back(JsonValue(std::move(meta)));
    }
    for (const SpanRecord& s : proc.spans) {
      JsonValue::Object ev;
      ev.emplace_back("name", s.name);
      ev.emplace_back("cat", s.tag.empty() ? std::string("span") : s.tag);
      ev.emplace_back("ph", "X");  // complete event: ts + dur, both in µs
      ev.emplace_back("ts", s.start_us);
      ev.emplace_back("dur", s.dur_us);
      ev.emplace_back("pid", pid);
      ev.emplace_back("tid", static_cast<int64_t>(s.tid));
      JsonValue::Object args;
      args.emplace_back("stage", static_cast<int64_t>(s.stage));
      args.emplace_back("batch", s.batch);
      // Ids as strings: JSON numbers are doubles and must not round.
      args.emplace_back("trace_id", std::to_string(s.trace_id));
      args.emplace_back("span_id", std::to_string(s.span_id));
      args.emplace_back("parent_span_id", std::to_string(s.parent_span_id));
      ev.emplace_back("args", JsonValue(std::move(args)));
      events.push_back(JsonValue(std::move(ev)));
    }
  }
  JsonValue::Object root;
  root.emplace_back("traceEvents", JsonValue(std::move(events)));
  root.emplace_back("displayTimeUnit", "ms");
  return JsonValue(std::move(root)).Dump(0);
}

std::string PrometheusExporter::MetricName(const std::string& dotted) {
  std::string out = "mvtee_";
  for (char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string PrometheusExporter::EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusExporter::EscapeHelpText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusExporter::Export() const {
  // The default registry aggregates the whole process: fold in the
  // data-plane instrumentation kept outside obs before snapshotting.
  if (registry_ == &Registry::Default()) SyncDataPlaneMetrics();
  return FromSnapshot(registry_->Snapshot());
}

std::string PrometheusExporter::FromSnapshot(const RegistrySnapshot& snap) {
  std::string out;
  char line[256];
  auto append_num = [&](const std::string& name, double v) {
    std::snprintf(line, sizeof(line), "%s %.17g\n", name.c_str(), v);
    out += line;
  };
  // Dotted names sanitize many-to-one ("a.b" and "a_b" both become
  // mvtee_a_b); a repeated # TYPE line for the same exposition name is a
  // parse error, so later colliders are dropped rather than emitted.
  std::set<std::string> emitted;
  auto claim = [&emitted](const std::string& n) {
    return emitted.insert(n).second;
  };
  auto header = [&](const std::string& n, const std::string& dotted,
                    const char* type) {
    out += "# HELP " + n + " " + EscapeHelpText("MVTEE metric " + dotted) +
           "\n";
    out += "# TYPE " + n + " " + type + "\n";
  };
  for (const auto& [name, value] : snap.counters) {
    const std::string n = MetricName(name);
    if (!claim(n)) continue;
    header(n, name, "counter");
    std::snprintf(line, sizeof(line), "%s %llu\n", n.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = MetricName(name);
    if (!claim(n)) continue;
    header(n, name, "gauge");
    std::snprintf(line, sizeof(line), "%s %lld\n", n.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  // Histograms expose their precomputed percentiles, so the summary
  // type (quantile labels) is the faithful mapping — the geometric
  // buckets themselves are an implementation detail.
  for (const auto& [name, st] : snap.histograms) {
    const std::string n = MetricName(name);
    if (!claim(n)) continue;
    header(n, name, "summary");
    append_num(n + "{quantile=\"0.5\"}", st.p50);
    append_num(n + "{quantile=\"0.95\"}", st.p95);
    append_num(n + "{quantile=\"0.99\"}", st.p99);
    append_num(n + "_sum", st.sum);
    std::snprintf(line, sizeof(line), "%s_count %llu\n", n.c_str(),
                  static_cast<unsigned long long>(st.count));
    out += line;
  }
  return out;
}

namespace {

void DumpOnExit() {
  if (const char* path = std::getenv("MVTEE_TRACE_JSON");
      path != nullptr && path[0] != '\0') {
    (void)ChromeTraceExporter().WriteTo(path);
  }
  if (const char* path = std::getenv("MVTEE_PROM_TEXT");
      path != nullptr && path[0] != '\0') {
    (void)PrometheusExporter().WriteTo(path);
  }
}

}  // namespace

void InstallExitDumps() {
  static const bool installed = [] {
    std::atexit(DumpOnExit);
    return true;
  }();
  (void)installed;
}

}  // namespace mvtee::obs
