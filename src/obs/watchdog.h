// Stall watchdog (DESIGN.md §12): a background sentinel over the
// monitor's event-loop heartbeat and the service backpressure gauges.
//
// The monitor bumps `monitor.loop_heartbeat` once per event-loop (and
// request-loop) iteration. The watchdog samples it every
// poll_interval_us together with the admission-queue depth, the
// inflight gauge and the verify-pool backlog, and raises three alarm
// classes:
//
//   stall          — the heartbeat has been silent for at least
//                    stall_threshold_us while work is pending
//                    (queue depth or inflight > 0). Idle silence is
//                    healthy: an empty service parks in cv.wait.
//   queue          — admission-queue depth at/above queue_depth_alarm.
//   verify backlog — monitor.verify_queue_depth at/above
//                    verify_backlog_alarm.
//
// Every alarm increments its watchdog.*_total counter on the rising
// edge and holds /healthz unhealthy while active; a *sustained stall*
// additionally dumps a FlightRecorder evidence bundle (trigger
// "watchdog-stall", once per stall episode — re-armed when the
// heartbeat advances) so the wedged state leaves the same forensic
// artifact a divergence would.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace mvtee::obs {

struct WatchdogOptions {
  int64_t poll_interval_us = 20'000;
  // Sustained event-loop silence (with work pending) that flips
  // /healthz and dumps the stall bundle.
  int64_t stall_threshold_us = 2'000'000;
  // Admission-queue depth alarm; 0 disables.
  int64_t queue_depth_alarm = 48;
  // Verify-pool backlog alarm; 0 disables.
  int64_t verify_backlog_alarm = 256;

  // Applies the MVTEE_WATCHDOG_{POLL_MS,STALL_MS,QUEUE_ALARM,
  // VERIFY_ALARM} env knobs on top of `base`. Values are validated
  // strictly (ResolveKnob); an invalid value keeps the base with a
  // logged warning.
  static WatchdogOptions FromEnv(WatchdogOptions base);
  static WatchdogOptions FromEnv() { return FromEnv(WatchdogOptions{}); }
};

class StallWatchdog {
 public:
  // Point-in-time health verdict, served by /healthz.
  struct Health {
    bool healthy = true;
    std::string reason;  // empty when healthy
    uint64_t heartbeat = 0;
    int64_t silent_for_us = 0;  // since the last heartbeat advance
    int64_t queue_depth = 0;
    int64_t inflight = 0;
    int64_t verify_queue_depth = 0;
    uint64_t stall_alarms = 0;  // episodes since Start
  };

  // Observes `registry` (where the monitor's heartbeat and gauges
  // live); stall bundles go through `recorder`. Does not start the
  // sampling thread — call Start().
  explicit StallWatchdog(Registry& registry,
                         WatchdogOptions options = WatchdogOptions{},
                         FlightRecorder* recorder = &FlightRecorder::Default());
  ~StallWatchdog();

  void Start();
  void Stop();  // joins the sampling thread; idempotent

  Health health() const;

  // Runs one sampling step inline (no thread needed) — test seam, also
  // exercised by the thread loop.
  void Evaluate(int64_t now_us);

  // Strict env-knob parsing in the ResolveThreadCount style: rejects
  // signs, whitespace, partial parses and out-of-range values with a
  // logged warning naming `knob`, returning `fallback`. `env_value`
  // may be nullptr (unset). Exposed for tests.
  static int64_t ResolveKnob(const char* knob, const char* env_value,
                             int64_t min, int64_t max, int64_t fallback);

 private:
  Registry& registry_;
  WatchdogOptions options_;
  FlightRecorder* recorder_;

  // Sampled instruments (pointer-stable for the registry's lifetime).
  Counter* heartbeat_ = nullptr;          // monitor.loop_heartbeat
  Gauge* queue_depth_ = nullptr;          // service.admission_queue_depth
  Gauge* inflight_ = nullptr;             // service.inflight
  Gauge* verify_depth_ = nullptr;         // monitor.verify_queue_depth
  // Published instruments.
  Counter* ticks_ = nullptr;              // watchdog.ticks_total
  Counter* stall_alarms_ = nullptr;       // watchdog.stall_alarms_total
  Counter* queue_alarms_ = nullptr;       // watchdog.queue_alarms_total
  Counter* verify_alarms_ = nullptr;      // watchdog.verify_backlog_alarms_total
  Counter* stall_bundles_ = nullptr;      // watchdog.stall_bundles_total
  Gauge* healthy_gauge_ = nullptr;        // watchdog.healthy (1|0)

  void Loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_ = false;
  std::thread thread_;

  // Evaluation state (under mu_).
  uint64_t last_heartbeat_ = 0;
  int64_t last_advance_us_ = 0;  // wall time the heartbeat last moved
  bool stalled_ = false;         // inside a stall episode
  bool bundle_dumped_ = false;   // this episode already left evidence
  bool queue_alarmed_ = false;
  bool verify_alarmed_ = false;
  Health health_{};
};

}  // namespace mvtee::obs
