// Thread-safe metrics registry: monotonic counters, gauges and
// fixed-bucket latency histograms with percentile estimation.
//
// Design (see DESIGN.md "Observability"):
//  - Metric objects are owned by a Registry and pointer-stable for its
//    lifetime, so hot paths resolve a metric once and then update it
//    lock-free (relaxed atomics; metrics are statistics, not
//    synchronization).
//  - Names are flat dotted strings ("monitor.stage0.verify_us"); the
//    stage/variant dimension is encoded in the name because the
//    cardinality is tiny and fixed at initialization.
//  - Snapshot() produces a plain-data RegistrySnapshot that serializes
//    to JSON and parses back (bench tooling round-trips dumps).
//  - Registry::Default() is the process-wide instance every production
//    component records into; tests use private instances.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mvtee::obs {

// Monotonically increasing event/byte counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time signed value (queue depths, active enclaves, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

struct HistogramStats {
  uint64_t count = 0;
  double sum = 0;  // sum of observed values
  int64_t min = 0;
  int64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;

  double mean() const { return count ? sum / static_cast<double>(count) : 0; }
};

// Fixed-bucket histogram for non-negative integer samples (latencies in
// microseconds, message sizes in bytes). Bucket upper bounds grow
// geometrically (~1.5x) from 1 to ~3e9, so percentile estimates carry
// at most ~25% relative bucket error across the full range.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 56;  // + overflow bucket

  void Observe(int64_t value);

  // Percentile estimate (q in [0,1]) by linear interpolation inside the
  // bucket where the rank falls, clamped to the observed min/max.
  double Percentile(double q) const;

  HistogramStats Stats() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

  // Upper bound of bucket `i` (inclusive); exposed for tests.
  static int64_t BucketBound(size_t i);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets + 1> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<int64_t> min_{0};
  std::atomic<int64_t> max_{0};
};

// Plain-data snapshot of a registry; serializes to/from JSON.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramStats> histograms;

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  //  sum, mean, min, max, p50, p95, p99}}}
  std::string ToJson(int indent = 2) const;
  static util::Result<RegistrySnapshot> FromJson(std::string_view json);

  // this - base for counters and histogram counts/sums (per-run deltas
  // over a cumulative registry). Gauges and percentiles keep the newer
  // value; metrics absent from `base` pass through unchanged.
  RegistrySnapshot DeltaSince(const RegistrySnapshot& base) const;
};

class Registry {
 public:
  // Returns the metric with `name`, creating it on first use. Pointers
  // are stable for the registry's lifetime. A name identifies one kind
  // of metric; reusing it with a different kind aborts (programmer
  // error).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  RegistrySnapshot Snapshot() const;
  std::string ToJson(int indent = 2) const { return Snapshot().ToJson(indent); }

  // Zeroes every metric (registrations and pointers survive).
  void Reset();

  // Process-wide registry used by the production wiring (monitor,
  // variant host, secure channels, executors). Never destroyed, so
  // metric updates during static teardown stay safe.
  static Registry& Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Mirrors the data-plane instrumentation that lives outside obs (the
// util buffer pool and copy counter cannot depend on this library) into
// `registry`: pool.{hits,misses}, pool.bytes_in_use{,_hwm} and
// dataplane.bytes_copied. Call before snapshotting/exporting; safe to
// call repeatedly and from multiple threads (counters advance by
// deltas, gauges take the latest value).
void SyncDataPlaneMetrics(Registry& registry = Registry::Default());

}  // namespace mvtee::obs
