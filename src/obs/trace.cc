#include "obs/trace.h"

#include <algorithm>
#include <atomic>

#include "obs/json.h"
#include "util/logging.h"

namespace mvtee::obs {

namespace {
// Innermost live span depth on this thread; -1 = no live span.
thread_local int32_t t_span_depth = -1;
// Trace context a child span on this thread parents under. Maintained
// by ScopedSpan (own ids while live) and TraceContextScope (remote
// parent adopted from a secure-channel header).
thread_local TraceContext t_context{};

std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint64_t> g_next_span_id{1};
std::atomic<int32_t> g_next_tid{1};

uint64_t LogTraceId() { return t_context.trace_id; }

// Stamp log lines with the live trace id. The provider slot is a
// constant-initialized atomic in util, so installing from a static
// initializer here is order-safe.
const bool g_log_provider_installed = [] {
  util::SetLogTraceIdProvider(&LogTraceId);
  return true;
}();
}  // namespace

uint64_t NewTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t NewSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

int32_t CurrentTid() {
  thread_local int32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

TraceContext CurrentTraceContext() { return t_context; }

TraceContextScope::TraceContextScope(TraceContext ctx) : saved_(t_context) {
  t_context = ctx;
}

TraceContextScope::~TraceContextScope() { t_context = saved_; }

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceBuffer::Record(SpanRecord span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[next_ % capacity_] = std::move(span);
  }
  ++next_;
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_ % capacity_ is the oldest slot once the ring has wrapped.
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

namespace {
JsonValue SpanToJson(const SpanRecord& s) {
  JsonValue::Object fields;
  fields.emplace_back("name", s.name);
  if (!s.tag.empty()) fields.emplace_back("tag", s.tag);
  fields.emplace_back("stage", static_cast<int64_t>(s.stage));
  fields.emplace_back("batch", s.batch);
  fields.emplace_back("depth", static_cast<int64_t>(s.depth));
  fields.emplace_back("tid", static_cast<int64_t>(s.tid));
  fields.emplace_back("start_us", s.start_us);
  fields.emplace_back("dur_us", s.dur_us);
  fields.emplace_back("trace_id", s.trace_id);
  fields.emplace_back("span_id", s.span_id);
  fields.emplace_back("parent_span_id", s.parent_span_id);
  return JsonValue(std::move(fields));
}
}  // namespace

std::string TraceBuffer::ToJson(int indent) const {
  JsonValue::Array spans;
  for (const SpanRecord& s : Snapshot()) {
    spans.push_back(SpanToJson(s));
  }
  return JsonValue(std::move(spans)).Dump(indent);
}

TraceBuffer& TraceBuffer::Default() {
  static TraceBuffer* buffer = new TraceBuffer();  // leaked: see Registry
  return *buffer;
}

ScopedSpan::ScopedSpan(std::string name, SpanTags tags, TraceBuffer* buffer,
                       Histogram* histogram)
    : buffer_(buffer), histogram_(histogram), saved_(t_context) {
  record_.name = std::move(name);
  record_.tag = std::move(tags.tag);
  record_.stage = tags.stage;
  record_.batch = tags.batch;
  record_.depth = ++t_span_depth;
  record_.tid = CurrentTid();
  record_.trace_id = saved_.trace_id;
  record_.parent_span_id = saved_.span_id;
  record_.span_id = NewSpanId();
  t_context = {record_.trace_id, record_.span_id};
  record_.start_us = util::NowMicros();
}

ScopedSpan::~ScopedSpan() {
  record_.dur_us = util::NowMicros() - record_.start_us;
  --t_span_depth;
  t_context = saved_;
  if (histogram_ != nullptr) histogram_->Observe(record_.dur_us);
  if (buffer_ != nullptr) buffer_->Record(std::move(record_));
}

int32_t ScopedSpan::CurrentDepth() { return t_span_depth; }

TraceCollector::MergedTrace TraceCollector::MergedTrace::Slice(
    uint64_t trace_id) const {
  MergedTrace out;
  for (const ProcessTrace& p : processes) {
    ProcessTrace filtered;
    filtered.process = p.process;
    for (const SpanRecord& s : p.spans) {
      if (s.trace_id == trace_id) filtered.spans.push_back(s);
    }
    if (!filtered.spans.empty()) out.processes.push_back(std::move(filtered));
  }
  return out;
}

size_t TraceCollector::MergedTrace::total_spans() const {
  size_t n = 0;
  for (const ProcessTrace& p : processes) n += p.spans.size();
  return n;
}

JsonValue TraceCollector::MergedTrace::ToJsonValue() const {
  JsonValue::Array procs;
  for (const ProcessTrace& p : processes) {
    JsonValue::Object fields;
    fields.emplace_back("process", p.process);
    JsonValue::Array spans;
    for (const SpanRecord& s : p.spans) spans.push_back(SpanToJson(s));
    fields.emplace_back("spans", JsonValue(std::move(spans)));
    procs.push_back(JsonValue(std::move(fields)));
  }
  JsonValue::Object root;
  root.emplace_back("processes", JsonValue(std::move(procs)));
  return JsonValue(std::move(root));
}

std::string TraceCollector::MergedTrace::ToJson(int indent) const {
  return ToJsonValue().Dump(indent);
}

void TraceCollector::Register(const std::string& name,
                              std::shared_ptr<TraceBuffer> buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, b] : buffers_) {
    if (n == name) {
      b = std::move(buffer);
      return;
    }
  }
  buffers_.emplace_back(name, std::move(buffer));
}

void TraceCollector::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.erase(
      std::remove_if(buffers_.begin(), buffers_.end(),
                     [&](const auto& e) { return e.first == name; }),
      buffers_.end());
}

TraceCollector::MergedTrace TraceCollector::Merge() const {
  std::vector<std::pair<std::string, std::shared_ptr<TraceBuffer>>> copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    copy = buffers_;
  }
  std::sort(copy.begin(), copy.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  MergedTrace out;
  for (const auto& [name, buffer] : copy) {
    out.processes.push_back({name, buffer->Snapshot()});
  }
  return out;
}

TraceCollector& TraceCollector::Default() {
  static TraceCollector* collector = new TraceCollector();  // leaked
  return *collector;
}

}  // namespace mvtee::obs
