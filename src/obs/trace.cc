#include "obs/trace.h"

#include "obs/json.h"

namespace mvtee::obs {

namespace {
// Innermost live span depth on this thread; -1 = no live span.
thread_local int32_t t_span_depth = -1;
}  // namespace

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceBuffer::Record(SpanRecord span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[next_ % capacity_] = std::move(span);
  }
  ++next_;
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_ % capacity_ is the oldest slot once the ring has wrapped.
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

std::string TraceBuffer::ToJson(int indent) const {
  JsonValue::Array spans;
  for (const SpanRecord& s : Snapshot()) {
    JsonValue::Object fields;
    fields.emplace_back("name", s.name);
    if (!s.tag.empty()) fields.emplace_back("tag", s.tag);
    fields.emplace_back("stage", static_cast<int64_t>(s.stage));
    fields.emplace_back("batch", s.batch);
    fields.emplace_back("depth", static_cast<int64_t>(s.depth));
    fields.emplace_back("start_us", s.start_us);
    fields.emplace_back("dur_us", s.dur_us);
    spans.push_back(JsonValue(std::move(fields)));
  }
  return JsonValue(std::move(spans)).Dump(indent);
}

TraceBuffer& TraceBuffer::Default() {
  static TraceBuffer* buffer = new TraceBuffer();  // leaked: see Registry
  return *buffer;
}

ScopedSpan::ScopedSpan(std::string name, SpanTags tags, TraceBuffer* buffer,
                       Histogram* histogram)
    : buffer_(buffer), histogram_(histogram) {
  record_.name = std::move(name);
  record_.tag = std::move(tags.tag);
  record_.stage = tags.stage;
  record_.batch = tags.batch;
  record_.depth = ++t_span_depth;
  record_.start_us = util::NowMicros();
}

ScopedSpan::~ScopedSpan() {
  record_.dur_us = util::NowMicros() - record_.start_us;
  --t_span_depth;
  if (histogram_ != nullptr) histogram_->Observe(record_.dur_us);
  if (buffer_ != nullptr) buffer_->Record(std::move(record_));
}

int32_t ScopedSpan::CurrentDepth() { return t_span_depth; }

}  // namespace mvtee::obs
