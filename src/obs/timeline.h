// Per-request latency breakdown (DESIGN.md §12): a RequestTimeline is
// stamped through the service request lifecycle — queue wait →
// coalesce → variant infer → verify → reply seal — and retained in a
// bounded TimelineLog ring. The per-phase aggregates live in the
// metrics registry as histograms (service.queue_wait_us, …); the ring
// keeps the *exemplars*: each entry carries the request's trace id, so
// a slow p99 request can be pulled up in the merged cross-TEE trace
// (TraceCollector::Merge().Slice(trace_id)) instead of being an
// anonymous bucket increment.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mvtee::obs {

class JsonValue;

// Phase durations of one service request, all in microseconds of wall
// clock. A phase the request never reached (e.g. reply for a failed
// request) stays 0.
struct RequestTimeline {
  uint64_t trace_id = 0;    // links into the merged trace
  uint64_t session_id = 0;  // owning monitor session
  uint64_t seq = 0;         // position in its session's sequence space
  int64_t enqueue_wall_us = 0;  // wall clock at admission-queue entry
  int64_t queue_wait_us = 0;    // enqueue -> popped by the request loop
  int64_t coalesce_us = 0;      // group assembly (shared by the group)
  int64_t infer_us = 0;         // pipelined MVX pass (shared by the group)
  int64_t verify_us = 0;        // cross-validation CPU of this batch
  int64_t reply_us = 0;         // reply encode + seal + send
  bool ok = false;              // request completed with outputs

  int64_t total_us() const {
    return queue_wait_us + coalesce_us + infer_us + reply_us;
  }
};

// Bounded, thread-safe ring of recently completed request timelines.
// The monitor's request loop Note()s an entry when a request clears the
// pipeline; the service front end patches in the reply-seal phase via
// NoteReply() once the sealed reply record went out.
class TimelineLog {
 public:
  explicit TimelineLog(size_t capacity = 512);

  void Note(RequestTimeline timeline);

  // Patches reply_us into the retained entry with `trace_id` (newest
  // first). A request already evicted from the ring is dropped — the
  // service.reply_us histogram still aggregates it.
  void NoteReply(uint64_t trace_id, int64_t reply_us);

  // Retained timelines, oldest first.
  std::vector<RequestTimeline> Snapshot() const;

  // The k slowest retained timelines by total_us, slowest first — the
  // exemplars an operator chases: each carries the trace id to slice
  // the merged trace with.
  std::vector<RequestTimeline> SlowestK(size_t k) const;

  uint64_t total_noted() const;
  void Clear();

  // Process-wide log the monitor's request loop notes into.
  static TimelineLog& Default();

 private:
  mutable std::mutex mu_;
  std::vector<RequestTimeline> ring_;
  size_t capacity_;
  uint64_t next_ = 0;
};

// {"trace_id": "...", "seq": n, "queue_wait_us": n, ...} — trace ids as
// strings (JSON numbers are doubles and must not round).
JsonValue TimelineToJson(const RequestTimeline& t);

}  // namespace mvtee::obs
