#include "obs/timeline.h"

#include <algorithm>

#include "obs/json.h"

namespace mvtee::obs {

TimelineLog::TimelineLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TimelineLog::Note(RequestTimeline timeline) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(timeline));
  } else {
    ring_[next_ % capacity_] = std::move(timeline);
  }
  ++next_;
}

void TimelineLog::NoteReply(uint64_t trace_id, int64_t reply_us) {
  if (trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = ring_.size();
  // Newest first: the reply lands right after its entry was noted, so
  // the scan almost always terminates on the first probe.
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = n < capacity_
                           ? n - 1 - i
                           : static_cast<size_t>((next_ - 1 - i) % capacity_);
    if (ring_[idx].trace_id == trace_id) {
      ring_[idx].reply_us = reply_us;
      return;
    }
  }
}

std::vector<RequestTimeline> TimelineLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestTimeline> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::vector<RequestTimeline> TimelineLog::SlowestK(size_t k) const {
  std::vector<RequestTimeline> all = Snapshot();
  std::stable_sort(all.begin(), all.end(),
                   [](const RequestTimeline& a, const RequestTimeline& b) {
                     return a.total_us() > b.total_us();
                   });
  if (all.size() > k) all.resize(k);
  return all;
}

uint64_t TimelineLog::total_noted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

void TimelineLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

TimelineLog& TimelineLog::Default() {
  static TimelineLog* log = new TimelineLog();  // leaked: outlives teardown
  return *log;
}

JsonValue TimelineToJson(const RequestTimeline& t) {
  JsonValue::Object fields;
  fields.emplace_back("trace_id", std::to_string(t.trace_id));
  fields.emplace_back("session_id", t.session_id);
  fields.emplace_back("seq", t.seq);
  fields.emplace_back("enqueue_wall_us", t.enqueue_wall_us);
  fields.emplace_back("queue_wait_us", t.queue_wait_us);
  fields.emplace_back("coalesce_us", t.coalesce_us);
  fields.emplace_back("infer_us", t.infer_us);
  fields.emplace_back("verify_us", t.verify_us);
  fields.emplace_back("reply_us", t.reply_us);
  fields.emplace_back("total_us", t.total_us());
  fields.emplace_back("ok", t.ok);
  return JsonValue(std::move(fields));
}

}  // namespace mvtee::obs
