// Divergence flight recorder (DESIGN.md §8): a bounded ring of recent
// checkpoint verdicts — per-variant output digests, sequence numbers
// and virtual-time bases — retained continuously so that when something
// goes wrong (vote divergence, authentication failure, run abort) the
// monitor can dump a self-contained JSON evidence bundle explaining
// *why*, not just that it happened.
//
// The bundle contains the trigger, the retained verdict ring, the
// merged cross-TEE trace slice for the affected trace id, and a metrics
// snapshot. Bundles are written to $MVTEE_EVIDENCE_DIR (one file per
// incident); when the variable is unset, DumpBundle is a no-op that
// returns FailedPrecondition so hot paths can call it unconditionally.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/status.h"

namespace mvtee::obs {

// One variant's contribution to a checkpoint verdict.
struct VariantEvidence {
  std::string variant_id;
  bool ok = false;         // did the variant report a healthy result
  uint64_t digest = 0;     // FNV-1a over the reported outputs (0 = none)
  bool nonfinite = false;  // outputs contained NaN/Inf
  uint64_t vtime_us = 0;   // virtual arrival time of the report
  bool dissent = false;    // voted against the accepted value
};

// One checkpoint verdict, as applied on the monitor thread.
struct CheckpointEvidence {
  uint64_t trace_id = 0;
  uint64_t batch = 0;
  int32_t stage = -1;
  // "accepted" | "divergence" | "late-divergence" | "rule-violation" |
  // "variant-failure" — free-form, but these are the produced values.
  std::string verdict;
  int64_t v_decide_us = 0;  // virtual decision time
  std::vector<VariantEvidence> variants;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 256);

  // Retains `ev`, evicting the oldest once at capacity. Thread-safe.
  void Note(CheckpointEvidence ev);

  // Retained verdicts, oldest first.
  std::vector<CheckpointEvidence> Snapshot() const;
  uint64_t total_noted() const;
  void Clear();

  // Writes an evidence bundle for an incident on `trace_id` to
  // $MVTEE_EVIDENCE_DIR and returns the file path. `trigger` names the
  // incident class ("vote-divergence", "auth-failure", "run-abort");
  // `detail` is the human-readable status message. The merged trace
  // slice comes from `collector` (default process collector), the
  // metrics snapshot from the default registry. FailedPrecondition when
  // the env var is unset.
  util::Result<std::string> DumpBundle(
      const std::string& trigger, uint64_t trace_id,
      const std::string& detail,
      const TraceCollector* collector = &TraceCollector::Default());

  // Process-wide recorder the monitor notes verdicts into.
  static FlightRecorder& Default();

 private:
  mutable std::mutex mu_;
  std::vector<CheckpointEvidence> ring_;
  size_t capacity_;
  uint64_t next_ = 0;
};

}  // namespace mvtee::obs
