#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace mvtee::obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonEscape(std::string_view s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

namespace {

void AppendNumber(double d, std::string& out) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; exporters emit 0
    out += "0";
    return;
  }
  // Integers (the common case for counters) print without a fraction.
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void Newline(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    AppendNumber(as_number(), out);
  } else if (is_string()) {
    out += '"';
    JsonEscape(as_string(), out);
    out += '"';
  } else if (is_array()) {
    const Array& a = as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (size_t i = 0; i < a.size(); ++i) {
      if (i) out += ',';
      Newline(out, indent, depth + 1);
      a[i].DumpTo(out, indent, depth + 1);
    }
    Newline(out, indent, depth);
    out += ']';
  } else {
    const Object& o = as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (size_t i = 0; i < o.size(); ++i) {
      if (i) out += ',';
      Newline(out, indent, depth + 1);
      out += '"';
      JsonEscape(o[i].first, out);
      out += "\":";
      if (indent > 0) out += ' ';
      o[i].second.DumpTo(out, indent, depth + 1);
    }
    Newline(out, indent, depth);
    out += '}';
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::Result<JsonValue> Parse() {
    MVTEE_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return util::InvalidArgument("trailing characters at offset " +
                                   std::to_string(pos_));
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  util::Status Fail(const std::string& what) {
    return util::InvalidArgument(what + " at offset " + std::to_string(pos_));
  }

  util::Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        MVTEE_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return JsonValue(true);
        }
        return Fail("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return JsonValue(false);
        }
        return Fail("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return JsonValue(nullptr);
        }
        return Fail("bad literal");
      default: return ParseNumber();
    }
  }

  util::Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0;
    auto [end, ec] = std::from_chars(text_.data() + start,
                                     text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      return Fail("bad number");
    }
    return JsonValue(value);
  }

  util::Result<std::string> ParseString() {
    if (!Consume('"')) return Fail("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // Exporters only escape control characters; encode BMP code
          // points as UTF-8 (surrogate pairs are out of scope).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  util::Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue::Array items;
    SkipWs();
    if (Consume(']')) return JsonValue(std::move(items));
    for (;;) {
      MVTEE_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      items.push_back(std::move(v));
      SkipWs();
      if (Consume(']')) return JsonValue(std::move(items));
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  util::Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue::Object fields;
    SkipWs();
    if (Consume('}')) return JsonValue(std::move(fields));
    for (;;) {
      SkipWs();
      MVTEE_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      MVTEE_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      fields.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Consume('}')) return JsonValue(std::move(fields));
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

util::Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace mvtee::obs
