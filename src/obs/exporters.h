// Standard-format exporters over the observability core (DESIGN.md §8):
//
//   ChromeTraceExporter  — Chrome/Perfetto trace-event JSON from the
//                          TraceCollector's merged timeline; one
//                          "process" row per registered TEE buffer.
//                          Loadable in ui.perfetto.dev / chrome://tracing.
//   PrometheusExporter   — Prometheus text exposition (version 0.0.4)
//                          from a metrics registry snapshot. Histograms
//                          are exposed as summaries (quantile labels).
//
// Plus env-driven dump-on-exit used by the benches: set MVTEE_TRACE_JSON
// and/or MVTEE_PROM_TEXT to file paths and call InstallExitDumps() once.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace mvtee::obs {

// A self-contained textual export of some observability surface.
class Exporter {
 public:
  virtual ~Exporter() = default;
  virtual std::string name() const = 0;
  // The full export document (never partial; callers own persistence).
  virtual std::string Export() const = 0;
  // Convenience: Export() into `path`, overwriting.
  util::Status WriteTo(const std::string& path) const;
};

class ChromeTraceExporter : public Exporter {
 public:
  explicit ChromeTraceExporter(
      const TraceCollector* collector = &TraceCollector::Default())
      : collector_(collector) {}
  std::string name() const override { return "chrome-trace"; }
  std::string Export() const override;

  // Export a pre-merged (possibly sliced) timeline.
  static std::string FromMerged(const TraceCollector::MergedTrace& merged);

 private:
  const TraceCollector* collector_;
};

class PrometheusExporter : public Exporter {
 public:
  explicit PrometheusExporter(const Registry* registry = &Registry::Default())
      : registry_(registry) {}
  std::string name() const override { return "prometheus"; }
  std::string Export() const override;

  static std::string FromSnapshot(const RegistrySnapshot& snap);
  // "monitor.stage0.verify_us" -> "mvtee_monitor_stage0_verify_us".
  static std::string MetricName(const std::string& dotted);
  // Text exposition 0.0.4 label-value escaping: backslash, double quote
  // and newline become \\, \" and \n.
  static std::string EscapeLabelValue(const std::string& value);
  // HELP-text escaping: backslash and newline become \\ and \n.
  static std::string EscapeHelpText(const std::string& text);

 private:
  const Registry* registry_;
};

// Registers an atexit hook (once) that writes the default collector's
// Chrome trace to $MVTEE_TRACE_JSON and the default registry's
// Prometheus text to $MVTEE_PROM_TEXT, when set and non-empty.
void InstallExitDumps();

}  // namespace mvtee::obs
