// Minimal JSON value model, writer and parser for the observability
// exporters (metrics registry snapshots, trace dumps).
//
// Scope is deliberately small: UTF-8 pass-through strings with the
// standard escapes, doubles for all numbers (exact for the integer
// ranges the exporters emit), objects with insertion-ordered keys so
// dumps are stable and diffable. Not a general-purpose JSON library.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/status.h"

namespace mvtee::obs {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  // Ordered map keeps exporter output deterministic.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : data_(nullptr) {}
  JsonValue(std::nullptr_t) : data_(nullptr) {}          // NOLINT
  JsonValue(bool b) : data_(b) {}                        // NOLINT
  JsonValue(double d) : data_(d) {}                      // NOLINT
  JsonValue(int64_t i) : data_(static_cast<double>(i)) {}    // NOLINT
  JsonValue(uint64_t u) : data_(static_cast<double>(u)) {}   // NOLINT
  JsonValue(int i) : data_(static_cast<double>(i)) {}        // NOLINT
  JsonValue(std::string s) : data_(std::move(s)) {}      // NOLINT
  JsonValue(const char* s) : data_(std::string(s)) {}    // NOLINT
  JsonValue(Array a) : data_(std::move(a)) {}            // NOLINT
  JsonValue(Object o) : data_(std::move(o)) {}           // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool() const { return std::get<bool>(data_); }
  double as_number() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }
  Array& as_array() { return std::get<Array>(data_); }
  Object& as_object() { return std::get<Object>(data_); }

  // Object lookup; nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;

  // Serializes this value. `indent` > 0 pretty-prints with that many
  // spaces per level.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      data_;
};

// Appends `s` JSON-escaped (without surrounding quotes) to `out`.
void JsonEscape(std::string_view s, std::string& out);

// Parses one JSON document (trailing whitespace allowed, nothing else).
util::Result<JsonValue> ParseJson(std::string_view text);

}  // namespace mvtee::obs
