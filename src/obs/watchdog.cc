#include "obs/watchdog.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <string>

#include "util/clock.h"
#include "util/knobs.h"
#include "util/logging.h"

namespace mvtee::obs {

int64_t StallWatchdog::ResolveKnob(const char* knob, const char* env_value,
                                   int64_t min, int64_t max,
                                   int64_t fallback) {
  // The strict parser moved to util::ResolveKnob so the whole knob
  // table (util::KnobRegistry) can share it; this shim keeps existing
  // callers working.
  return util::ResolveKnob(knob, env_value, min, max, fallback);
}

WatchdogOptions WatchdogOptions::FromEnv(WatchdogOptions base) {
  base.poll_interval_us =
      StallWatchdog::ResolveKnob("MVTEE_WATCHDOG_POLL_MS",
                                 std::getenv("MVTEE_WATCHDOG_POLL_MS"), 1,
                                 60'000, base.poll_interval_us / 1000) *
      1000;
  base.stall_threshold_us =
      StallWatchdog::ResolveKnob("MVTEE_WATCHDOG_STALL_MS",
                                 std::getenv("MVTEE_WATCHDOG_STALL_MS"), 1,
                                 3'600'000, base.stall_threshold_us / 1000) *
      1000;
  base.queue_depth_alarm = StallWatchdog::ResolveKnob(
      "MVTEE_WATCHDOG_QUEUE_ALARM", std::getenv("MVTEE_WATCHDOG_QUEUE_ALARM"),
      0, 1'000'000, base.queue_depth_alarm);
  base.verify_backlog_alarm = StallWatchdog::ResolveKnob(
      "MVTEE_WATCHDOG_VERIFY_ALARM",
      std::getenv("MVTEE_WATCHDOG_VERIFY_ALARM"), 0, 1'000'000,
      base.verify_backlog_alarm);
  return base;
}

StallWatchdog::StallWatchdog(Registry& registry, WatchdogOptions options,
                             FlightRecorder* recorder)
    : registry_(registry), options_(options), recorder_(recorder) {
  heartbeat_ = &registry_.GetCounter("monitor.loop_heartbeat");
  queue_depth_ = &registry_.GetGauge("service.admission_queue_depth");
  inflight_ = &registry_.GetGauge("service.inflight");
  verify_depth_ = &registry_.GetGauge("monitor.verify_queue_depth");
  ticks_ = &registry_.GetCounter("watchdog.ticks_total");
  stall_alarms_ = &registry_.GetCounter("watchdog.stall_alarms_total");
  queue_alarms_ = &registry_.GetCounter("watchdog.queue_alarms_total");
  verify_alarms_ =
      &registry_.GetCounter("watchdog.verify_backlog_alarms_total");
  stall_bundles_ = &registry_.GetCounter("watchdog.stall_bundles_total");
  healthy_gauge_ = &registry_.GetGauge("watchdog.healthy");
  healthy_gauge_->Set(1);
  last_heartbeat_ = heartbeat_->value();
  last_advance_us_ = util::NowMicros();
}

StallWatchdog::~StallWatchdog() { Stop(); }

void StallWatchdog::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread(&StallWatchdog::Loop, this);
}

void StallWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
}

void StallWatchdog::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock,
                   std::chrono::microseconds(options_.poll_interval_us),
                   [this] { return stop_; });
      if (stop_) return;
    }
    Evaluate(util::NowMicros());
  }
}

StallWatchdog::Health StallWatchdog::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

void StallWatchdog::Evaluate(int64_t now_us) {
  const uint64_t beat = heartbeat_->value();
  const int64_t queue = queue_depth_->value();
  const int64_t inflight = inflight_->value();
  const int64_t verify = verify_depth_->value();

  std::string dump_reason;  // non-empty: dump a stall bundle (outside mu_)
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticks_->Add(1);
    if (beat != last_heartbeat_) {
      last_heartbeat_ = beat;
      last_advance_us_ = now_us;
      // The loop moved again: the episode ends and re-arms the bundle.
      stalled_ = false;
      bundle_dumped_ = false;
    }
    const int64_t silent_us = now_us - last_advance_us_;
    const bool busy = queue > 0 || inflight > 0;
    const bool stall_now = busy && silent_us >= options_.stall_threshold_us;
    if (stall_now && !stalled_) {
      stalled_ = true;
      stall_alarms_->Add(1);
    }
    const bool queue_now = options_.queue_depth_alarm > 0 &&
                           queue >= options_.queue_depth_alarm;
    if (queue_now && !queue_alarmed_) queue_alarms_->Add(1);
    queue_alarmed_ = queue_now;
    const bool verify_now = options_.verify_backlog_alarm > 0 &&
                            verify >= options_.verify_backlog_alarm;
    if (verify_now && !verify_alarmed_) verify_alarms_->Add(1);
    verify_alarmed_ = verify_now;

    health_.healthy = !stalled_ && !queue_now && !verify_now;
    health_.heartbeat = beat;
    health_.silent_for_us = silent_us;
    health_.queue_depth = queue;
    health_.inflight = inflight;
    health_.verify_queue_depth = verify;
    health_.stall_alarms = stall_alarms_->value();
    if (health_.healthy) {
      health_.reason.clear();
    } else if (stalled_) {
      health_.reason = "event loop silent for " +
                       std::to_string(silent_us) + "us with " +
                       std::to_string(queue) + " queued / " +
                       std::to_string(inflight) + " inflight";
    } else if (queue_now) {
      health_.reason = "admission queue depth " + std::to_string(queue) +
                       " >= alarm " +
                       std::to_string(options_.queue_depth_alarm);
    } else {
      health_.reason = "verify backlog " + std::to_string(verify) +
                       " >= alarm " +
                       std::to_string(options_.verify_backlog_alarm);
    }
    healthy_gauge_->Set(health_.healthy ? 1 : 0);
    if (stalled_ && !bundle_dumped_) {
      bundle_dumped_ = true;
      dump_reason = health_.reason;
    }
  }
  if (!dump_reason.empty()) {
    // Outside mu_: DumpBundle merges traces and snapshots the registry,
    // which must not serialize against health() readers. The sustained
    // stall leaves the same forensic artifact a divergence would.
    auto dumped = recorder_->DumpBundle("watchdog-stall", /*trace_id=*/0,
                                        dump_reason);
    if (dumped.ok()) {
      stall_bundles_->Add(1);
      MVTEE_WLOG << "watchdog stall bundle: " << *dumped << " ("
                 << dump_reason << ")";
    } else {
      MVTEE_WLOG << "watchdog stall (" << dump_reason
                 << "); no evidence bundle: "
                 << dumped.status().ToString();
    }
  }
}

}  // namespace mvtee::obs
