#include "obs/flight_recorder.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace mvtee::obs {

namespace {
std::atomic<uint64_t> g_bundle_seq{0};
}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::Note(CheckpointEvidence ev) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_ % capacity_] = std::move(ev);
  }
  ++next_;
}

std::vector<CheckpointEvidence> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CheckpointEvidence> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t FlightRecorder::total_noted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

namespace {

JsonValue EvidenceToJson(const CheckpointEvidence& ev) {
  JsonValue::Object fields;
  fields.emplace_back("trace_id", std::to_string(ev.trace_id));
  fields.emplace_back("batch", ev.batch);
  fields.emplace_back("stage", static_cast<int64_t>(ev.stage));
  fields.emplace_back("verdict", ev.verdict);
  fields.emplace_back("v_decide_us", ev.v_decide_us);
  JsonValue::Array variants;
  for (const VariantEvidence& v : ev.variants) {
    JsonValue::Object vf;
    vf.emplace_back("variant_id", v.variant_id);
    vf.emplace_back("ok", v.ok);
    // Digests as hex strings: 64-bit values do not survive doubles.
    char hex[19];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(v.digest));
    vf.emplace_back("digest", std::string(hex));
    vf.emplace_back("nonfinite", v.nonfinite);
    vf.emplace_back("vtime_us", v.vtime_us);
    vf.emplace_back("dissent", v.dissent);
    variants.push_back(JsonValue(std::move(vf)));
  }
  fields.emplace_back("variants", JsonValue(std::move(variants)));
  return JsonValue(std::move(fields));
}

}  // namespace

util::Result<std::string> FlightRecorder::DumpBundle(
    const std::string& trigger, uint64_t trace_id, const std::string& detail,
    const TraceCollector* collector) {
  const char* dir = std::getenv("MVTEE_EVIDENCE_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return util::FailedPrecondition("MVTEE_EVIDENCE_DIR not set");
  }
  ::mkdir(dir, 0755);  // best effort; EEXIST is the common case

  JsonValue::Object root;
  root.emplace_back("schema", "mvtee-evidence-v1");
  root.emplace_back("trigger", trigger);
  root.emplace_back("detail", detail);
  root.emplace_back("trace_id", std::to_string(trace_id));
  root.emplace_back("wall_us", util::NowMicros());

  JsonValue::Array verdicts;
  for (const CheckpointEvidence& ev : Snapshot()) {
    verdicts.push_back(EvidenceToJson(ev));
  }
  root.emplace_back("verdicts", JsonValue(std::move(verdicts)));

  // The causally linked cross-TEE timeline of the affected trace; the
  // full (unsliced) merge when the incident has no trace id.
  TraceCollector::MergedTrace merged = collector->Merge();
  if (trace_id != 0) merged = merged.Slice(trace_id);
  root.emplace_back("trace", merged.ToJsonValue());

  // Metrics snapshot: re-parse the registry's own JSON so the bundle
  // embeds it as structured data rather than an escaped string.
  auto metrics = ParseJson(Registry::Default().Snapshot().ToJson(0));
  root.emplace_back("metrics",
                    metrics.ok() ? std::move(*metrics) : JsonValue(nullptr));

  const uint64_t seq =
      g_bundle_seq.fetch_add(1, std::memory_order_relaxed);
  char name[128];
  std::snprintf(name, sizeof(name), "%s/evidence-%d-%llu.json", dir,
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(seq));
  std::FILE* f = std::fopen(name, "w");
  if (f == nullptr) {
    return util::Internal(std::string("cannot write evidence bundle ") +
                          name);
  }
  const std::string doc = JsonValue(std::move(root)).Dump(2);
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return util::Internal(std::string("short write on ") + name);
  }
  Registry::Default().GetCounter("recorder.bundles_written").Add(1);
  return std::string(name);
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked
  return *recorder;
}

}  // namespace mvtee::obs
