#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "obs/json.h"
#include "util/buffer_pool.h"
#include "util/dataplane_stats.h"

namespace mvtee::obs {

namespace {

// Geometric bucket bounds, built once. bounds[i] is the inclusive upper
// bound of bucket i; samples above the last bound land in the overflow
// bucket.
const std::array<int64_t, Histogram::kNumBuckets>& BucketBounds() {
  static const auto bounds = [] {
    std::array<int64_t, Histogram::kNumBuckets> b{};
    int64_t prev = 0;
    for (size_t i = 0; i < b.size(); ++i) {
      int64_t next = std::max(prev + 1, prev + prev / 2);
      if (prev == 0) next = 1;
      b[i] = next;
      prev = next;
    }
    return b;
  }();
  return bounds;
}

void AtomicMin(std::atomic<int64_t>& slot, int64_t v) {
  int64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<int64_t>& slot, int64_t v) {
  int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

using BucketArray = std::array<uint64_t, Histogram::kNumBuckets + 1>;

// Percentile over a point-in-time copy of the bucket array. `n` must be
// the sum of `buckets` so the rank math and the caller's count agree
// exactly — a live scrape must never report quantiles for one instant
// and a count for another.
double PercentileFromBuckets(const BucketArray& buckets, uint64_t n,
                             int64_t lo, int64_t hi, double q) {
  q = std::clamp(q, 0.0, 1.0);
  if (n == 0) return 0;
  // Rank of the q-th sample, 1-based.
  const double rank = q * static_cast<double>(n - 1) + 1.0;
  const auto& bounds = BucketBounds();
  double cumulative = 0;
  for (size_t i = 0; i <= Histogram::kNumBuckets; ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      // Interpolate within [bucket lower, bucket upper].
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double upper = i < Histogram::kNumBuckets
                               ? static_cast<double>(bounds[i])
                               : static_cast<double>(hi);
      const double frac = (rank - cumulative) / in_bucket;
      const double est = lower + (upper - lower) * frac;
      return std::clamp(est, static_cast<double>(lo),
                        static_cast<double>(hi));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(hi);
}

}  // namespace

int64_t Histogram::BucketBound(size_t i) {
  MVTEE_CHECK(i < kNumBuckets);
  return BucketBounds()[i];
}

void Histogram::Observe(int64_t value) {
  if (value < 0) value = 0;
  const auto& bounds = BucketBounds();
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(static_cast<uint64_t>(value), std::memory_order_relaxed);
  // First observation seeds min/max; count_ is incremented last so a
  // racing Stats() never divides by a count ahead of sum_.
  if (count_.load(std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    AtomicMin(min_, value);
    AtomicMax(max_, value);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::Percentile(double q) const {
  BucketArray buckets;
  uint64_t n = 0;
  for (size_t i = 0; i <= kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    n += buckets[i];
  }
  return PercentileFromBuckets(buckets, n,
                               min_.load(std::memory_order_relaxed),
                               max_.load(std::memory_order_relaxed), q);
}

HistogramStats Histogram::Stats() const {
  // One pass over the bucket array; the count is derived from that same
  // copy, so p50/p95/p99 and count describe the same instant even while
  // other threads keep observing (a live /metrics scrape depends on
  // this). sum/min/max are read adjacently — they can trail the bucket
  // snapshot by in-flight observations but never contradict the count
  // by more than that race window.
  BucketArray buckets;
  uint64_t n = 0;
  for (size_t i = 0; i <= kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    n += buckets[i];
  }
  HistogramStats s;
  s.count = n;
  if (n == 0) return s;
  s.sum = static_cast<double>(sum_.load(std::memory_order_relaxed));
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.p50 = PercentileFromBuckets(buckets, n, s.min, s.max, 0.50);
  s.p95 = PercentileFromBuckets(buckets, n, s.min, s.max, 0.95);
  s.p99 = PercentileFromBuckets(buckets, n, s.min, s.max, 0.99);
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  MVTEE_CHECK(gauges_.find(name) == gauges_.end() &&
              histograms_.find(name) == histograms_.end());
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  MVTEE_CHECK(counters_.find(name) == counters_.end() &&
              histograms_.find(name) == histograms_.end());
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  MVTEE_CHECK(counters_.find(name) == counters_.end() &&
              gauges_.find(name) == gauges_.end());
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Stats();
  }
  return snap;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();  // leaked: outlives teardown
  return *registry;
}

std::string RegistrySnapshot::ToJson(int indent) const {
  JsonValue::Object counters_obj;
  for (const auto& [name, v] : counters) counters_obj.emplace_back(name, v);
  JsonValue::Object gauges_obj;
  for (const auto& [name, v] : gauges) gauges_obj.emplace_back(name, v);
  JsonValue::Object hists_obj;
  for (const auto& [name, h] : histograms) {
    JsonValue::Object fields;
    fields.emplace_back("count", h.count);
    fields.emplace_back("sum", h.sum);
    fields.emplace_back("mean", h.mean());
    fields.emplace_back("min", h.min);
    fields.emplace_back("max", h.max);
    fields.emplace_back("p50", h.p50);
    fields.emplace_back("p95", h.p95);
    fields.emplace_back("p99", h.p99);
    hists_obj.emplace_back(name, JsonValue(std::move(fields)));
  }
  JsonValue::Object root;
  root.emplace_back("counters", JsonValue(std::move(counters_obj)));
  root.emplace_back("gauges", JsonValue(std::move(gauges_obj)));
  root.emplace_back("histograms", JsonValue(std::move(hists_obj)));
  return JsonValue(std::move(root)).Dump(indent);
}

util::Result<RegistrySnapshot> RegistrySnapshot::FromJson(
    std::string_view json) {
  MVTEE_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (!root.is_object()) {
    return util::InvalidArgument("snapshot root must be an object");
  }
  RegistrySnapshot snap;
  if (const JsonValue* counters = root.Find("counters")) {
    if (!counters->is_object()) {
      return util::InvalidArgument("'counters' must be an object");
    }
    for (const auto& [name, v] : counters->as_object()) {
      if (!v.is_number()) {
        return util::InvalidArgument("counter '" + name + "' not a number");
      }
      snap.counters[name] = static_cast<uint64_t>(v.as_number());
    }
  }
  if (const JsonValue* gauges = root.Find("gauges")) {
    if (!gauges->is_object()) {
      return util::InvalidArgument("'gauges' must be an object");
    }
    for (const auto& [name, v] : gauges->as_object()) {
      if (!v.is_number()) {
        return util::InvalidArgument("gauge '" + name + "' not a number");
      }
      snap.gauges[name] = static_cast<int64_t>(v.as_number());
    }
  }
  if (const JsonValue* hists = root.Find("histograms")) {
    if (!hists->is_object()) {
      return util::InvalidArgument("'histograms' must be an object");
    }
    for (const auto& [name, v] : hists->as_object()) {
      if (!v.is_object()) {
        return util::InvalidArgument("histogram '" + name + "' not an object");
      }
      HistogramStats h;
      auto num = [&v](const char* key, double fallback = 0) {
        const JsonValue* f = v.Find(key);
        return f != nullptr && f->is_number() ? f->as_number() : fallback;
      };
      h.count = static_cast<uint64_t>(num("count"));
      h.sum = num("sum");
      h.min = static_cast<int64_t>(num("min"));
      h.max = static_cast<int64_t>(num("max"));
      h.p50 = num("p50");
      h.p95 = num("p95");
      h.p99 = num("p99");
      snap.histograms[name] = h;
    }
  }
  return snap;
}

RegistrySnapshot RegistrySnapshot::DeltaSince(
    const RegistrySnapshot& base) const {
  RegistrySnapshot delta = *this;
  for (auto& [name, v] : delta.counters) {
    auto it = base.counters.find(name);
    if (it != base.counters.end()) {
      v = v >= it->second ? v - it->second : 0;
    }
  }
  for (auto& [name, h] : delta.histograms) {
    auto it = base.histograms.find(name);
    if (it == base.histograms.end()) continue;
    h.count = h.count >= it->second.count ? h.count - it->second.count : 0;
    h.sum -= it->second.sum;
    // min/max/percentiles are not delta-able from aggregates; the
    // cumulative values are kept as an approximation of the window.
  }
  return delta;
}

void SyncDataPlaneMetrics(Registry& registry) {
  // Serialized so concurrent syncs cannot double-apply a delta.
  static std::mutex sync_mu;
  std::lock_guard<std::mutex> lk(sync_mu);
  const util::BufferPool::Stats s = util::BufferPool::Default().stats();
  auto sync_counter = [&registry](std::string_view name, uint64_t total) {
    Counter& c = registry.GetCounter(name);
    const uint64_t current = c.value();
    if (total > current) c.Add(total - current);
  };
  sync_counter("pool.hits", s.hits);
  sync_counter("pool.misses", s.misses);
  sync_counter("dataplane.bytes_copied", util::DataPlaneBytesCopied());
  registry.GetGauge("pool.bytes_in_use")
      .Set(static_cast<int64_t>(s.bytes_in_use));
  registry.GetGauge("pool.bytes_in_use_hwm")
      .Set(static_cast<int64_t>(s.bytes_in_use_hwm));
}

}  // namespace mvtee::obs
