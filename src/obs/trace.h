// Lightweight trace spans: scoped RAII timers tagged with stage /
// variant / batch ids, recorded into a bounded ring buffer.
//
// Spans capture *real* wall-clock durations of host-side work (attest,
// verify, forward, infer); they complement the virtual-time performance
// model, which accounts simulated wire/crypto costs separately. Nesting
// is tracked per thread: a span opened while another span is live on
// the same thread records depth = parent depth + 1.
//
// Distributed tracing (DESIGN.md §8): every span additionally carries a
// trace id (one per inference batch), its own span id, and its parent's
// span id. The parent is tracked through a per-thread context that
// ScopedSpan maintains automatically; TraceContextScope installs a
// *remote* parent (received over a secure-channel header) so spans in a
// variant TEE parent correctly under the monitor's dispatch span. A
// TraceCollector merges the per-TEE ring buffers into one causally
// linked timeline for the exporters and the flight recorder.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"

namespace mvtee::obs {

class JsonValue;

struct SpanRecord {
  std::string name;     // taxonomy: "component/operation"
  std::string tag;      // free-form (variant id, model name); may be empty
  int32_t stage = -1;   // pipeline stage, -1 when not applicable
  int64_t batch = -1;   // batch id, -1 when not applicable
  int32_t depth = 0;    // nesting depth on the recording thread
  int32_t tid = 0;      // small per-thread id (see CurrentTid)
  int64_t start_us = 0; // wall clock (util::NowMicros)
  int64_t dur_us = 0;
  uint64_t trace_id = 0;        // 0 = not part of a distributed trace
  uint64_t span_id = 0;         // unique per span within the process set
  uint64_t parent_span_id = 0;  // 0 = root of its trace on this timeline
};

// Process-unique, monotonically increasing ids (never 0).
uint64_t NewTraceId();
uint64_t NewSpanId();

// Small sequential id of the calling thread, assigned on first use.
// Stable for the thread's lifetime; dense enough for Perfetto rows.
int32_t CurrentTid();

// The (trace id, span id) pair a child span on this thread would parent
// under — what gets propagated across TEE boundaries.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

// Context of the calling thread (innermost live span, or whatever a
// TraceContextScope installed).
TraceContext CurrentTraceContext();

// Installs `ctx` as the calling thread's trace context for its lifetime
// (restores the previous context on destruction). Used at both ends:
// the monitor roots a batch's trace before dispatching, and a variant
// service adopts the received context so its spans parent under the
// monitor's dispatch span.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  TraceContextScope(uint64_t trace_id, uint64_t span_id)
      : TraceContextScope(TraceContext{trace_id, span_id}) {}
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

// Fixed-capacity ring of completed spans (oldest overwritten first).
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 4096);

  void Record(SpanRecord span);

  // Completed spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;
  // Total spans ever recorded (>= Snapshot().size() once wrapped).
  uint64_t total_recorded() const;
  void Clear();

  // JSON array of {name, tag, stage, batch, depth, tid, start_us,
  // dur_us, trace_id, span_id, parent_span_id}.
  std::string ToJson(int indent = 2) const;

  // Process-wide buffer the production wiring records into.
  static TraceBuffer& Default();

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  size_t capacity_;
  uint64_t next_ = 0;  // monotonically increasing write index
};

struct SpanTags {
  int32_t stage = -1;
  int64_t batch = -1;
  std::string tag;
};

// RAII span: times construction → destruction, then records into the
// buffer (and optionally a latency histogram). Inherits the thread's
// trace context as its parent and installs itself as the context for
// spans opened underneath it.
class ScopedSpan {
 public:
  using Tags = SpanTags;

  explicit ScopedSpan(std::string name, SpanTags tags = {},
                      TraceBuffer* buffer = &TraceBuffer::Default(),
                      Histogram* histogram = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Context a remote child should parent under: this span's ids.
  TraceContext context() const {
    return {record_.trace_id, record_.span_id};
  }

  // Depth of the innermost live span on this thread (testing hook).
  static int32_t CurrentDepth();

 private:
  TraceBuffer* buffer_;
  Histogram* histogram_;
  SpanRecord record_;
  TraceContext saved_;
};

// Registry of named per-TEE trace buffers ("monitor", "tee/s1.v2", …).
// Each simulated TEE registers its own ring at bootstrap; the monitor
// (or an exporter) merges them into one timeline. Registration replaces
// any previous buffer under the same name — rebinding a variant id in a
// later run supersedes the retired TEE's buffer.
class TraceCollector {
 public:
  struct ProcessTrace {
    std::string process;  // registration name (one Perfetto "process")
    std::vector<SpanRecord> spans;
  };
  struct MergedTrace {
    std::vector<ProcessTrace> processes;

    // Only the spans belonging to `trace_id`, buffers with none dropped.
    MergedTrace Slice(uint64_t trace_id) const;
    size_t total_spans() const;
    // {"processes": [{"process": name, "spans": [...]}]}
    JsonValue ToJsonValue() const;
    std::string ToJson(int indent = 2) const;
  };

  void Register(const std::string& name,
                std::shared_ptr<TraceBuffer> buffer);
  void Unregister(const std::string& name);

  // Snapshot of every registered buffer, processes in name order.
  MergedTrace Merge() const;

  // Process-wide collector the production wiring registers into.
  static TraceCollector& Default();

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::shared_ptr<TraceBuffer>>>
      buffers_;
};

}  // namespace mvtee::obs
