// Lightweight trace spans: scoped RAII timers tagged with stage /
// variant / batch ids, recorded into a bounded ring buffer.
//
// Spans capture *real* wall-clock durations of host-side work (attest,
// verify, forward, infer); they complement the virtual-time performance
// model, which accounts simulated wire/crypto costs separately. Nesting
// is tracked per thread: a span opened while another span is live on
// the same thread records depth = parent depth + 1.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"

namespace mvtee::obs {

struct SpanRecord {
  std::string name;     // taxonomy: "component/operation"
  std::string tag;      // free-form (variant id, model name); may be empty
  int32_t stage = -1;   // pipeline stage, -1 when not applicable
  int64_t batch = -1;   // batch id, -1 when not applicable
  int32_t depth = 0;    // nesting depth on the recording thread
  int64_t start_us = 0; // wall clock (util::NowMicros)
  int64_t dur_us = 0;
};

// Fixed-capacity ring of completed spans (oldest overwritten first).
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 4096);

  void Record(SpanRecord span);

  // Completed spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;
  // Total spans ever recorded (>= Snapshot().size() once wrapped).
  uint64_t total_recorded() const;
  void Clear();

  // JSON array of {name, tag, stage, batch, depth, start_us, dur_us}.
  std::string ToJson(int indent = 2) const;

  // Process-wide buffer the production wiring records into.
  static TraceBuffer& Default();

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  size_t capacity_;
  uint64_t next_ = 0;  // monotonically increasing write index
};

struct SpanTags {
  int32_t stage = -1;
  int64_t batch = -1;
  std::string tag;
};

// RAII span: times construction → destruction, then records into the
// buffer (and optionally a latency histogram).
class ScopedSpan {
 public:
  using Tags = SpanTags;

  explicit ScopedSpan(std::string name, SpanTags tags = {},
                      TraceBuffer* buffer = &TraceBuffer::Default(),
                      Histogram* histogram = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Depth of the innermost live span on this thread (testing hook).
  static int32_t CurrentDepth();

 private:
  TraceBuffer* buffer_;
  Histogram* histogram_;
  SpanRecord record_;
};

}  // namespace mvtee::obs
