#include "util/knobs.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/logging.h"

extern "C" char** environ;

namespace mvtee::util {

int64_t ResolveKnob(const char* knob, const char* env_value, int64_t min,
                    int64_t max, int64_t fallback) {
  if (env_value == nullptr) return fallback;
  // strtoll accepts leading whitespace, '+'/'-' signs and partial
  // parses; reject all of those explicitly (same seam style as
  // ThreadPool::ResolveThreadCount) so "abc", "-3" or "4q" fall back
  // with a diagnostic instead of silently becoming 0.
  const char* p = env_value;
  if (*p == '\0') {
    MVTEE_WLOG << knob << " is empty; using default " << fallback;
    return fallback;
  }
  for (const char* q = p; *q != '\0'; ++q) {
    if (*q < '0' || *q > '9') {
      MVTEE_WLOG << knob << "='" << env_value
                 << "' is not a non-negative integer; using default "
                 << fallback;
      return fallback;
    }
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(p, &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0' || v < min ||
      v > max) {
    MVTEE_WLOG << knob << "='" << env_value << "' out of range [" << min
               << ", " << max << "]; using default " << fallback;
    return fallback;
  }
  return static_cast<int64_t>(v);
}

namespace {

constexpr int64_t kMax64 = INT64_MAX;

std::vector<KnobDesc> BuiltinTable() {
  using Kind = KnobDesc::Kind;
  // Every MVTEE_* variable the runtime reads. Adding a getenv call
  // anywhere else without a row here trips the unknown-knob warning
  // in deployments that set it — keep this table exhaustive.
  return {
      {"MVTEE_THREADS", Kind::kInt, 1, 4096, 0, "auto",
       "worker threads per pool (0/unset = hardware concurrency)"},
      {"MVTEE_SIMD", Kind::kInt, 0, 1, 1, "1",
       "runtime SIMD dispatch (0 forces scalar kernels)"},
      {"MVTEE_PACK_CACHE", Kind::kInt, 0, 1, 1, "1",
       "prepacked constant-weight cache (0 repacks per call)"},
      {"MVTEE_POOL", Kind::kInt, 0, 1, 1, "1",
       "tensor buffer pooling (0 disables retention)"},
      {"MVTEE_POOL_RETAIN_BYTES", Kind::kInt, 0, kMax64, 64ll << 20,
       "67108864", "bytes of freed tensor buffers the pool retains"},
      {"MVTEE_LOG_LEVEL", Kind::kString, 0, 0, 0, "warn",
       "log threshold: error|warn|info|debug"},
      {"MVTEE_WATCHDOG_POLL_MS", Kind::kInt, 1, 60'000, 20, "20",
       "stall-watchdog poll interval"},
      {"MVTEE_WATCHDOG_STALL_MS", Kind::kInt, 1, 3'600'000, 2000, "2000",
       "heartbeat silence before a stall alarm"},
      {"MVTEE_WATCHDOG_QUEUE_ALARM", Kind::kInt, 0, 1'000'000, 48, "48",
       "admission-queue depth that raises an alarm"},
      {"MVTEE_WATCHDOG_VERIFY_ALARM", Kind::kInt, 0, 1'000'000, 256, "256",
       "verify-pool backlog that raises an alarm"},
      {"MVTEE_ADMIN_PORT", Kind::kInt, 0, 65'535, -1, "off",
       "loopback TCP port for /healthz /metrics /status (0 = ephemeral)"},
      {"MVTEE_ADMIN_LINGER_MS", Kind::kInt, 0, 3'600'000, 0, "0",
       "keep bench deployments alive for admin scrapes"},
      {"MVTEE_SCHED_WINDOW_US", Kind::kInt, 0, 10'000'000, 2000, "2000",
       "EDF reordering horizon for fresh slack requests (0 = off)"},
      {"MVTEE_SCHED_MAX_BATCH", Kind::kInt, 1, 1024, 8, "8",
       "max requests coalesced into one admission batch"},
      {"MVTEE_SCHED_EDF", Kind::kInt, 0, 1, 1, "1",
       "earliest-deadline-first ordering in the scheduler"},
      {"MVTEE_SCHED_QUOTA_PCT", Kind::kInt, 1, 100, 100, "100",
       "per-tenant share of one batch, percent (100 = uncapped)"},
      {"MVTEE_BENCH_JSON", Kind::kString, 0, 0, 0, "",
       "path for bench JSON summaries"},
      {"MVTEE_METRICS_JSON", Kind::kString, 0, 0, 0, "",
       "path for the metrics JSON export"},
      {"MVTEE_TRACE_JSON", Kind::kString, 0, 0, 0, "",
       "path for the Chrome-trace export"},
      {"MVTEE_PROM_TEXT", Kind::kString, 0, 0, 0, "",
       "path for the Prometheus text export"},
      {"MVTEE_EVIDENCE_DIR", Kind::kString, 0, 0, 0, "",
       "directory for flight-recorder evidence bundles"},
  };
}

}  // namespace

KnobRegistry::KnobRegistry() : table_(BuiltinTable()) {}

KnobRegistry& KnobRegistry::Default() {
  static KnobRegistry* registry = new KnobRegistry();
  return *registry;
}

const KnobDesc* KnobRegistry::Find(const char* name) const {
  for (const KnobDesc& d : table_) {
    if (std::strcmp(d.name, name) == 0) return &d;
  }
  return nullptr;
}

int64_t KnobRegistry::Int(const char* name) const {
  return IntFrom(name, std::getenv(name));
}

int64_t KnobRegistry::IntFrom(const char* name, const char* value) const {
  const KnobDesc* d = Find(name);
  if (d == nullptr || d->kind != KnobDesc::Kind::kInt) {
    MVTEE_WLOG << name << " is not a registered integer knob";
    return 0;
  }
  return ResolveKnob(name, value, d->min, d->max, d->def);
}

const char* KnobRegistry::Raw(const char* name) const {
  if (Find(name) == nullptr) {
    MVTEE_WLOG << name << " is not a registered knob";
    return nullptr;
  }
  return std::getenv(name);
}

std::vector<KnobView> KnobRegistry::Snapshot() const {
  std::vector<KnobView> out;
  out.reserve(table_.size());
  for (const KnobDesc& d : table_) {
    KnobView v;
    v.desc = &d;
    const char* raw = std::getenv(d.name);
    v.set = raw != nullptr;
    if (raw != nullptr) v.raw = raw;
    if (d.kind == KnobDesc::Kind::kInt) {
      v.value = std::to_string(ResolveKnob(d.name, raw, d.min, d.max, d.def));
    } else {
      v.value = raw != nullptr ? raw : d.def_str;
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<std::string> KnobRegistry::UnknownIn(
    const char* const* envp) const {
  std::vector<std::string> unknown;
  if (envp == nullptr) return unknown;
  for (const char* const* e = envp; *e != nullptr; ++e) {
    const char* eq = std::strchr(*e, '=');
    if (eq == nullptr) continue;
    const std::string name(*e, static_cast<size_t>(eq - *e));
    if (name.rfind("MVTEE_", 0) != 0) continue;
    if (Find(name.c_str()) == nullptr) unknown.push_back(name);
  }
  return unknown;
}

void KnobRegistry::WarnUnknownOnce() {
  static std::once_flag once;
  std::call_once(once, [this] {
    for (const std::string& name : UnknownIn(environ)) {
      MVTEE_WLOG << name << " is set but is not a recognized MVTEE knob "
                 << "(see the knob table in README / admin /status)";
    }
  });
}

}  // namespace mvtee::util
