// Size-classed, thread-safe buffer pool backing the zero-copy data
// plane (DESIGN.md §10).
//
// Every record crossing a TEE boundary lives in one PooledBuffer: the
// sender encodes the frame straight into it, the AEAD seals it in
// place, the transport queues move the refcounted handle instead of
// copying bytes, and the receiver's tensor views alias the opened
// record until the last reference dies — at which point the underlying
// storage returns to the pool for reuse. Enclave memory (EPC) makes
// per-message heap churn disproportionately expensive, so buffers are
// recycled in power-of-two size classes with hit/miss/high-water
// accounting.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/bytes.h"

namespace mvtee::util {

class BufferPool;

namespace internal {
// Shared state behind a PooledBuffer. The destructor of the last
// reference returns the storage to its pool (or frees it, for adopted
// buffers and when retention is full).
struct PoolChunk {
  Bytes bytes;
  BufferPool* pool = nullptr;  // null: adopted plain heap buffer
  size_t charged = 0;          // capacity charged to pool accounting
  ~PoolChunk();
};
}  // namespace internal

// Refcounted handle to a pool-recycled (or adopted) byte buffer.
// Copies share the same storage; the buffer is recycled when the last
// handle — including keepalive() shares held by tensor views — dies.
class PooledBuffer {
 public:
  PooledBuffer() = default;

  // Wraps an existing heap buffer (no pool involvement) so transports
  // can carry legacy frames and pooled frames uniformly.
  static PooledBuffer Adopt(Bytes b);

  Bytes& bytes() { return chunk_->bytes; }
  const Bytes& bytes() const { return chunk_->bytes; }
  uint8_t* data() { return chunk_->bytes.data(); }
  const uint8_t* data() const { return chunk_->bytes.data(); }
  size_t size() const { return chunk_ ? chunk_->bytes.size() : 0; }
  ByteSpan span() const {
    return chunk_ ? ByteSpan(chunk_->bytes) : ByteSpan();
  }

  // Opaque share that pins the storage alive (tensor-view keepalive).
  std::shared_ptr<const void> keepalive() const { return chunk_; }

  bool unique() const { return chunk_ && chunk_.use_count() == 1; }
  explicit operator bool() const { return chunk_ != nullptr; }
  void reset() { chunk_.reset(); }

  // Moves the bytes out when this handle solely owns a non-pooled
  // buffer (the legacy fast case); copies otherwise so pooled storage
  // is never leaked out of the recycling discipline.
  Bytes TakeBytes();

 private:
  friend class BufferPool;
  std::shared_ptr<internal::PoolChunk> chunk_;
};

// Thread-safe pool of byte buffers in power-of-two size classes.
class BufferPool {
 public:
  // `max_retained_bytes` caps the idle storage kept for reuse (0 =
  // recycle nothing: every release frees).
  explicit BufferPool(size_t max_retained_bytes = 64ull << 20);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a buffer with size() == n (capacity is the class size).
  // Contents are unspecified — callers overwrite.
  PooledBuffer Acquire(size_t n);

  struct Stats {
    uint64_t hits = 0;            // acquires served from a freelist
    uint64_t misses = 0;          // acquires that allocated fresh
    uint64_t bytes_in_use = 0;    // capacity currently checked out
    uint64_t bytes_in_use_hwm = 0;
    uint64_t retained_bytes = 0;  // idle capacity parked in freelists
  };
  Stats stats() const;

  uint64_t total_acquires() const {
    return hits_.load(std::memory_order_relaxed) +
           misses_.load(std::memory_order_relaxed);
  }

  // Frees every retained buffer (stats survive).
  void Trim();

  // Process-wide pool used by the production data plane. Honors
  // MVTEE_POOL_RETAIN_BYTES (idle-capacity cap) and MVTEE_POOL=0
  // (retention off — every buffer is freed on release, for A/B runs).
  static BufferPool& Default();

 private:
  friend struct internal::PoolChunk;
  void Release(Bytes b, size_t charged);

  static size_t ClassIndex(size_t n);  // may be >= kNumClasses (oversize)
  static size_t ClassBytes(size_t cls);

  static constexpr size_t kMinClassShift = 9;   // 512 B
  static constexpr size_t kMaxClassShift = 26;  // 64 MiB
  static constexpr size_t kNumClasses = kMaxClassShift - kMinClassShift + 1;

  const size_t max_retained_bytes_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> bytes_in_use_{0};
  std::atomic<uint64_t> bytes_in_use_hwm_{0};

  mutable std::mutex mu_;
  size_t retained_bytes_ = 0;
  std::vector<Bytes> free_lists_[kNumClasses];
};

}  // namespace mvtee::util
