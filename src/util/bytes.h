// Byte-buffer utilities shared by the crypto, transport and TEE layers.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mvtee::util {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(ByteSpan b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::string HexEncode(ByteSpan data);
// Returns empty vector on malformed input (odd length / non-hex chars) with
// ok=false; use the two-arg form when failure must be distinguished.
bool HexDecode(std::string_view hex, Bytes& out);

// Append helpers used by serializers.
void AppendU8(Bytes& out, uint8_t v);
void AppendU16(Bytes& out, uint16_t v);
void AppendU32(Bytes& out, uint32_t v);
void AppendU64(Bytes& out, uint64_t v);
void AppendF32(Bytes& out, float v);
void AppendBytes(Bytes& out, ByteSpan data);
// Length-prefixed (u32) byte string.
void AppendLengthPrefixed(Bytes& out, ByteSpan data);
void AppendLengthPrefixedStr(Bytes& out, std::string_view s);

// Cursor-based reader with bounds checking; all Read* return false on
// underflow and leave the output untouched.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

  bool ReadU8(uint8_t& v);
  bool ReadU16(uint16_t& v);
  bool ReadU32(uint32_t& v);
  bool ReadU64(uint64_t& v);
  bool ReadF32(float& v);
  bool ReadBytes(size_t n, Bytes& out);
  // Zero-copy variant: `out` aliases the underlying buffer, valid only
  // while it stays alive (pin pooled buffers via keepalive()).
  bool ReadSpan(size_t n, ByteSpan& out);
  bool ReadLengthPrefixed(Bytes& out);
  bool ReadLengthPrefixedStr(std::string& out);
  bool Skip(size_t n);

 private:
  ByteSpan data_;
  size_t pos_ = 0;
};

// Constant-time comparison (crypto-safe): true iff equal.
bool ConstantTimeEqual(ByteSpan a, ByteSpan b);

}  // namespace mvtee::util
