#include "util/thread_pool.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "util/knobs.h"
#include "util/logging.h"

namespace mvtee::util {

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::RunShard(Job* job) {
  for (;;) {
    const size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) return;
    (*job->fn)(i);
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == job->n) {
      std::lock_guard<std::mutex> lk(job->mu);
      job->cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || job_ != nullptr; });
    if (stop_) return;
    Job* job = job_;
    // Attach under mu_: once the caller (or another worker) clears
    // job_, no new worker can reach the job, so the caller's wait for
    // active == 0 bounds the job's lifetime.
    job->active.fetch_add(1, std::memory_order_acq_rel);
    lk.unlock();
    RunShard(job);
    {
      std::lock_guard<std::mutex> jlk(job->mu);
      if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        job->cv.notify_all();
      }
    }
    lk.lock();
    // All indices are claimed once RunShard returns; stop waking
    // workers for this job.
    if (job_ == job) job_ = nullptr;
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Job job;
  job.n = n;
  job.fn = &fn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
  }
  cv_.notify_all();
  RunShard(&job);  // the caller participates
  {
    // Unpublish before waiting so no further worker can attach; any
    // already-attached worker is counted in `active` and waited out.
    std::lock_guard<std::mutex> lk(mu_);
    if (job_ == &job) job_ = nullptr;
  }
  std::unique_lock<std::mutex> jlk(job.mu);
  job.cv.wait(jlk, [&job, n] {
    return job.done.load(std::memory_order_acquire) == n &&
           job.active.load(std::memory_order_acquire) == 0;
  });
}

size_t ThreadPool::ResolveThreadCount(const char* env_value,
                                      size_t hardware) {
  if (env_value == nullptr) return hardware;
  // strtoull accepts leading whitespace, '+'/'-' signs and partial
  // parses; reject all of those explicitly so "abc", "-3" or "4q" fall
  // back to the hardware default with a diagnostic instead of silently
  // becoming 0 (or a huge wrapped-around) workers.
  const char* p = env_value;
  if (*p == '\0') {
    MVTEE_WLOG << "MVTEE_THREADS is empty; using default " << hardware;
    return hardware;
  }
  for (const char* q = p; *q != '\0'; ++q) {
    if (*q < '0' || *q > '9') {
      MVTEE_WLOG << "MVTEE_THREADS=\"" << env_value
                 << "\" is not a non-negative integer; using default "
                 << hardware;
      return hardware;
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(p, &end, 10);
  // One thread per hardware context is already the useful maximum; a
  // four-digit cap just guards against typos spawning thousands of
  // OS threads.
  constexpr unsigned long long kMaxThreads = 4096;
  if (errno == ERANGE || *end != '\0' || v == 0 || v > kMaxThreads) {
    MVTEE_WLOG << "MVTEE_THREADS=\"" << env_value << "\" out of range (1-"
               << kMaxThreads << "); using default " << hardware;
    return hardware;
  }
  return static_cast<size_t>(v);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    const size_t hardware =
        std::max<size_t>(1, std::thread::hardware_concurrency());
    const size_t threads =
        ResolveThreadCount(KnobRegistry::Default().Raw("MVTEE_THREADS"),
                           hardware);
    const size_t workers = threads > 1 ? threads - 1 : 0;
    return new ThreadPool(workers);
  }();
  return *pool;
}

}  // namespace mvtee::util
