#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace mvtee::util {

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::RunShard(Job* job) {
  for (;;) {
    const size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) return;
    (*job->fn)(i);
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == job->n) {
      std::lock_guard<std::mutex> lk(job->mu);
      job->cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || job_ != nullptr; });
    if (stop_) return;
    Job* job = job_;
    // Attach under mu_: once the caller (or another worker) clears
    // job_, no new worker can reach the job, so the caller's wait for
    // active == 0 bounds the job's lifetime.
    job->active.fetch_add(1, std::memory_order_acq_rel);
    lk.unlock();
    RunShard(job);
    {
      std::lock_guard<std::mutex> jlk(job->mu);
      if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        job->cv.notify_all();
      }
    }
    lk.lock();
    // All indices are claimed once RunShard returns; stop waking
    // workers for this job.
    if (job_ == job) job_ = nullptr;
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Job job;
  job.n = n;
  job.fn = &fn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
  }
  cv_.notify_all();
  RunShard(&job);  // the caller participates
  {
    // Unpublish before waiting so no further worker can attach; any
    // already-attached worker is counted in `active` and waited out.
    std::lock_guard<std::mutex> lk(mu_);
    if (job_ == &job) job_ = nullptr;
  }
  std::unique_lock<std::mutex> jlk(job.mu);
  job.cv.wait(jlk, [&job, n] {
    return job.done.load(std::memory_order_acquire) == n &&
           job.active.load(std::memory_order_acquire) == 0;
  });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    size_t threads = std::min<size_t>(
        std::max(1u, std::thread::hardware_concurrency()), 8);
    if (const char* e = std::getenv("MVTEE_THREADS")) {
      threads = static_cast<size_t>(std::strtoull(e, nullptr, 10));
    }
    const size_t workers = threads > 1 ? threads - 1 : 0;
    return new ThreadPool(workers);
  }();
  return *pool;
}

}  // namespace mvtee::util
