// Minimal leveled logger. Thread-safe, writes to stderr.
//
// The minimum level defaults to warning and can be lowered/raised with
// MVTEE_LOG_LEVEL=debug|info|warning|error (applied once, lazily, on
// the first GetLogLevel/SetLogLevel; an explicit SetLogLevel always
// wins). When a distributed-trace context is live on the emitting
// thread (obs::TraceContextScope / an open span), the line carries the
// active trace id so service logs can be joined against the merged
// trace and the /status timeline exemplars.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace mvtee::util {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Strict parse of a log-level name: "debug", "info", "warning" (or
// "warn"), "error". nullptr (unset) returns `fallback` silently; any
// other value — wrong case, surrounding whitespace, abbreviations —
// warns and returns `fallback`, mirroring the ResolveThreadCount env
// seam. Exposed for tests; the env knob goes through this.
LogLevel ResolveLogLevel(const char* env_value, LogLevel fallback);

// Installs the callback EmitLog queries for the active trace id (0 =
// none, omit). Wired from obs/trace.cc at static-init; logging itself
// must not depend on obs.
void SetLogTraceIdProvider(uint64_t (*provider)());

namespace internal {
void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace mvtee::util

#define MVTEE_LOG(level)                                              \
  if (::mvtee::util::LogLevel::level >= ::mvtee::util::GetLogLevel()) \
  ::mvtee::util::internal::LogMessage(::mvtee::util::LogLevel::level, \
                                      __FILE__, __LINE__)

#define MVTEE_DLOG MVTEE_LOG(kDebug)
#define MVTEE_ILOG MVTEE_LOG(kInfo)
#define MVTEE_WLOG MVTEE_LOG(kWarning)
#define MVTEE_ELOG MVTEE_LOG(kError)
