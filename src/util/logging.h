// Minimal leveled logger. Thread-safe, writes to stderr.
#pragma once

#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace mvtee::util {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace mvtee::util

#define MVTEE_LOG(level)                                              \
  if (::mvtee::util::LogLevel::level >= ::mvtee::util::GetLogLevel()) \
  ::mvtee::util::internal::LogMessage(::mvtee::util::LogLevel::level, \
                                      __FILE__, __LINE__)

#define MVTEE_DLOG MVTEE_LOG(kDebug)
#define MVTEE_ILOG MVTEE_LOG(kInfo)
#define MVTEE_WLOG MVTEE_LOG(kWarning)
#define MVTEE_ELOG MVTEE_LOG(kError)
