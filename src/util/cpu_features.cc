#include "util/cpu_features.h"

#include <atomic>
#include <cstdlib>

#include "util/knobs.h"

namespace mvtee::util {

namespace {

CpuFeatures Detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.aes = __builtin_cpu_supports("aes");
  f.pclmul = __builtin_cpu_supports("pclmul");
  f.ssse3 = __builtin_cpu_supports("ssse3");
  f.avx512f = __builtin_cpu_supports("avx512f");
#endif
  return f;
}

bool SimdEnabledFromEnv() {
  // Strict 0/1 via the knob table; malformed values warn and keep
  // dispatch on (the registered default).
  return KnobRegistry::Default().Int("MVTEE_SIMD") != 0;
}

// Tri-state so ScopedForceScalar can restore the env-derived default.
std::atomic<bool> g_force_scalar{false};

}  // namespace

const CpuFeatures& HostCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

bool SimdEnabled() {
  static const bool env_enabled = SimdEnabledFromEnv();
  return env_enabled && !g_force_scalar.load(std::memory_order_relaxed);
}

bool UseAvx2Gemm() {
  const CpuFeatures& f = HostCpuFeatures();
  return f.avx2 && f.fma && SimdEnabled();
}

bool UseAesGcmAccel() {
  const CpuFeatures& f = HostCpuFeatures();
  return f.aes && f.pclmul && f.ssse3 && SimdEnabled();
}

bool UseAvx2Elementwise() {
  return HostCpuFeatures().avx2 && SimdEnabled();
}

std::string CpuFeatureString() {
  const CpuFeatures& f = HostCpuFeatures();
  std::string out;
  auto add = [&](bool has, const char* name) {
    if (!has) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  add(f.aes, "aes");
  add(f.pclmul, "pclmul");
  add(f.ssse3, "ssse3");
  add(f.avx512f, "avx512f");
  if (out.empty()) out = "scalar";
  return out;
}

ScopedForceScalar::ScopedForceScalar() {
  g_force_scalar.store(true, std::memory_order_relaxed);
}

ScopedForceScalar::~ScopedForceScalar() {
  g_force_scalar.store(false, std::memory_order_relaxed);
}

}  // namespace mvtee::util
