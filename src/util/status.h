// Lightweight Status / Result<T> error-handling primitives.
//
// MVTEE uses explicit status propagation rather than exceptions on all
// distributed/protocol paths: a monitor must treat a misbehaving variant
// as data, not as a control-flow anomaly. Exceptions are reserved for
// programmer errors (checked via MVTEE_CHECK, which aborts).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace mvtee::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kDataLoss,
  kPermissionDenied,
  kDeadlineExceeded,
  kAborted,
  // Security-specific codes surfaced by the TEE / crypto layers.
  kAuthenticationFailure,  // AEAD tag or MAC mismatch
  kAttestationFailure,     // quote/report verification failed
  kReplayDetected,         // stale nonce or sequence number
  kDivergenceDetected,     // MVX checkpoint cross-check failed
  // Service-front-end codes (DESIGN.md §7 taxonomy, §11 service).
  kAdmissionRejected,      // admission queue full (backpressure)
  kHandshakeFailure,       // session establishment failed
};

std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DataLoss(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status Aborted(std::string msg) {
  return Status(StatusCode::kAborted, std::move(msg));
}
inline Status AuthenticationFailure(std::string msg) {
  return Status(StatusCode::kAuthenticationFailure, std::move(msg));
}
inline Status AttestationFailure(std::string msg) {
  return Status(StatusCode::kAttestationFailure, std::move(msg));
}
inline Status ReplayDetected(std::string msg) {
  return Status(StatusCode::kReplayDetected, std::move(msg));
}
inline Status DivergenceDetected(std::string msg) {
  return Status(StatusCode::kDivergenceDetected, std::move(msg));
}
inline Status AdmissionRejected(std::string msg) {
  return Status(StatusCode::kAdmissionRejected, std::move(msg));
}
inline Status HandshakeFailure(std::string msg) {
  return Status(StatusCode::kHandshakeFailure, std::move(msg));
}

// Result<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    if (std::get<Status>(data_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (ok()) return OkStatus();
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(data_).ToString().c_str());
      std::abort();
    }
  }
  std::variant<T, Status> data_;
};

}  // namespace mvtee::util

// Propagate a non-OK Status from the current function.
#define MVTEE_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::mvtee::util::Status _st = (expr);               \
    if (!_st.ok()) return _st;                        \
  } while (0)

#define MVTEE_CONCAT_INNER(a, b) a##b
#define MVTEE_CONCAT(a, b) MVTEE_CONCAT_INNER(a, b)

// Assign a Result's value to `lhs`, or propagate its status.
#define MVTEE_ASSIGN_OR_RETURN(lhs, expr)                       \
  auto MVTEE_CONCAT(_res_, __LINE__) = (expr);                  \
  if (!MVTEE_CONCAT(_res_, __LINE__).ok())                      \
    return MVTEE_CONCAT(_res_, __LINE__).status();              \
  lhs = std::move(MVTEE_CONCAT(_res_, __LINE__)).value()

// Invariant check: aborts on violation (programmer error, not input error).
#define MVTEE_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "MVTEE_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)
