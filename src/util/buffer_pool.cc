#include "util/buffer_pool.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/knobs.h"

namespace mvtee::util {

namespace internal {

PoolChunk::~PoolChunk() {
  if (pool != nullptr) pool->Release(std::move(bytes), charged);
}

}  // namespace internal

PooledBuffer PooledBuffer::Adopt(Bytes b) {
  PooledBuffer out;
  out.chunk_ = std::make_shared<internal::PoolChunk>();
  out.chunk_->bytes = std::move(b);
  return out;
}

Bytes PooledBuffer::TakeBytes() {
  if (!chunk_) return Bytes();
  if (chunk_->pool == nullptr && chunk_.use_count() == 1) {
    Bytes out = std::move(chunk_->bytes);
    chunk_.reset();
    return out;
  }
  Bytes out = chunk_->bytes;
  return out;
}

BufferPool::BufferPool(size_t max_retained_bytes)
    : max_retained_bytes_(max_retained_bytes) {}

BufferPool::~BufferPool() = default;

size_t BufferPool::ClassIndex(size_t n) {
  if (n <= (size_t{1} << kMinClassShift)) return 0;
  return static_cast<size_t>(std::bit_width(n - 1)) - kMinClassShift;
}

size_t BufferPool::ClassBytes(size_t cls) {
  return size_t{1} << (kMinClassShift + cls);
}

PooledBuffer BufferPool::Acquire(size_t n) {
  const size_t cls = ClassIndex(n);
  Bytes storage;
  size_t charged = 0;
  bool hit = false;
  if (cls < kNumClasses) {
    charged = ClassBytes(cls);
    std::lock_guard<std::mutex> lk(mu_);
    auto& fl = free_lists_[cls];
    if (!fl.empty()) {
      // Buffers are filed by the floor class of their capacity, so
      // anything in free_lists_[cls] has capacity >= ClassBytes(cls) >= n.
      storage = std::move(fl.back());
      fl.pop_back();
      retained_bytes_ -= charged;
      hit = true;
    }
  } else {
    charged = n;  // oversize: charged at exact size, never retained
  }
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    storage.reserve(charged);
  }
  storage.resize(n);

  uint64_t in_use =
      bytes_in_use_.fetch_add(charged, std::memory_order_relaxed) + charged;
  uint64_t hwm = bytes_in_use_hwm_.load(std::memory_order_relaxed);
  while (in_use > hwm && !bytes_in_use_hwm_.compare_exchange_weak(
                             hwm, in_use, std::memory_order_relaxed)) {
  }

  PooledBuffer out;
  out.chunk_ = std::make_shared<internal::PoolChunk>();
  out.chunk_->bytes = std::move(storage);
  out.chunk_->pool = this;
  out.chunk_->charged = charged;
  return out;
}

void BufferPool::Release(Bytes b, size_t charged) {
  bytes_in_use_.fetch_sub(charged, std::memory_order_relaxed);
  // File by the floor class of the capacity so a later pop from that
  // class is guaranteed to satisfy its request without reallocating.
  // Sub-minimum and oversize buffers are never retained.
  if (b.capacity() < (size_t{1} << kMinClassShift) ||
      b.capacity() > ClassBytes(kNumClasses - 1)) {
    return;
  }
  size_t cls = static_cast<size_t>(std::bit_width(b.capacity())) - 1;
  if (cls < kMinClassShift) return;
  cls -= kMinClassShift;
  if (cls >= kNumClasses) return;  // oversize buffers are not retained
  const size_t retain_charge = ClassBytes(cls);
  std::lock_guard<std::mutex> lk(mu_);
  if (retained_bytes_ + retain_charge > max_retained_bytes_) return;
  retained_bytes_ += retain_charge;
  free_lists_[cls].push_back(std::move(b));
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.bytes_in_use = bytes_in_use_.load(std::memory_order_relaxed);
  s.bytes_in_use_hwm = bytes_in_use_hwm_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  s.retained_bytes = retained_bytes_;
  return s;
}

void BufferPool::Trim() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& fl : free_lists_) fl.clear();
  retained_bytes_ = 0;
}

BufferPool& BufferPool::Default() {
  static BufferPool* pool = [] {
    const KnobRegistry& knobs = KnobRegistry::Default();
    size_t retain =
        static_cast<size_t>(knobs.Int("MVTEE_POOL_RETAIN_BYTES"));
    if (knobs.Int("MVTEE_POOL") == 0) retain = 0;
    return new BufferPool(retain);
  }();
  return *pool;
}

}  // namespace mvtee::util
