#include "util/status.h"

namespace mvtee::util {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kAuthenticationFailure: return "AUTHENTICATION_FAILURE";
    case StatusCode::kAttestationFailure: return "ATTESTATION_FAILURE";
    case StatusCode::kReplayDetected: return "REPLAY_DETECTED";
    case StatusCode::kDivergenceDetected: return "DIVERGENCE_DETECTED";
    case StatusCode::kAdmissionRejected: return "ADMISSION_REJECTED";
    case StatusCode::kHandshakeFailure: return "HANDSHAKE_FAILURE";
  }
  return "UNKNOWN";
}

}  // namespace mvtee::util
