// One strict surface for every MVTEE_* environment knob.
//
// The runtime grew env switches organically — MVTEE_THREADS in the
// thread pool, MVTEE_SIMD in cpu_features, MVTEE_POOL* in the buffer
// pool, MVTEE_WATCHDOG_* / MVTEE_ADMIN_* in obs/service, plus the
// scheduler knobs added with continuous batching. Each had its own
// getenv + parse. KnobRegistry consolidates them behind a single
// descriptor table:
//
//   - integer knobs resolve through ResolveKnob (strict digits-only
//     parse, range check, warn-and-fallback on anything else);
//   - string knobs (artifact paths, MVTEE_LOG_LEVEL) are registered so
//     they appear in the same table;
//   - the whole table can be dumped (admin /status "knobs" section and
//     the README knob table are generated from it);
//   - MVTEE_* variables in the environment that are NOT in the table
//     log one warning per process, so typos like MVTEE_THERADS fail
//     loudly instead of silently doing nothing.
//
// ResolveKnob itself lives here (moved from obs::StallWatchdog, which
// keeps a delegating shim) so layers below obs can use it.
#ifndef MVTEE_UTIL_KNOBS_H_
#define MVTEE_UTIL_KNOBS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mvtee::util {

// Strictly parses env_value as a non-negative decimal integer in
// [min, max]. Returns fallback — with a one-line warning naming the
// knob — for null/empty strings, any non-digit character (so "-3",
// " 5" and "4q" all fall back) and out-of-range values.
int64_t ResolveKnob(const char* knob, const char* env_value, int64_t min,
                    int64_t max, int64_t fallback);

// One registered environment knob.
struct KnobDesc {
  enum class Kind { kInt, kString };
  const char* name;     // full variable name, e.g. "MVTEE_ADMIN_PORT"
  Kind kind;
  int64_t min = 0;      // kInt only
  int64_t max = 0;      // kInt only
  int64_t def = 0;      // kInt only
  const char* def_str;  // display default ("" for unset strings)
  const char* doc;      // one-line description for /status and README
};

// Effective state of one knob for introspection dumps.
struct KnobView {
  const KnobDesc* desc;
  bool set = false;     // present in the environment
  std::string raw;      // raw env value when set
  std::string value;    // effective value after strict resolution
};

class KnobRegistry {
 public:
  // Process-wide registry over the built-in descriptor table.
  static KnobRegistry& Default();

  // Resolves a registered integer knob from the environment with
  // ResolveKnob semantics (strict parse, range clamp to the
  // descriptor, warn-and-fallback to the descriptor default).
  // Unregistered names are a programming error: warns and returns 0.
  int64_t Int(const char* name) const;
  // Test seam: same resolution against an explicit value.
  int64_t IntFrom(const char* name, const char* value) const;

  // Raw env lookup for registered string knobs (nullptr when unset).
  const char* Raw(const char* name) const;

  const KnobDesc* Find(const char* name) const;
  const std::vector<KnobDesc>& Table() const { return table_; }

  // Effective state of every registered knob, in table order.
  std::vector<KnobView> Snapshot() const;

  // Pure scan: MVTEE_*-prefixed names in envp that are not registered.
  // envp rows are "NAME=value" strings, nullptr-terminated.
  std::vector<std::string> UnknownIn(const char* const* envp) const;

  // Scans the real environment and logs one warning per unknown
  // MVTEE_* variable. Idempotent per process.
  void WarnUnknownOnce();

 private:
  KnobRegistry();
  std::vector<KnobDesc> table_;
};

}  // namespace mvtee::util

#endif  // MVTEE_UTIL_KNOBS_H_
