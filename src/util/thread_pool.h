// Shared worker pool for data-parallel compute (DESIGN.md §10).
//
// One pool per process, shared by every variant host: multi-variant
// redundancy already multiplies compute by the variant count, so
// per-variant pools would oversubscribe the machine. Sizing comes from
// MVTEE_THREADS (default: hardware_concurrency — uncapped, wide
// servers get every core). A malformed MVTEE_THREADS value is rejected
// with a logged warning and the default is used instead of silently
// collapsing to zero workers. With zero workers ParallelFor degrades
// to an inline serial loop, so the pool is safe to use unconditionally.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mvtee::util {

class ThreadPool {
 public:
  // Spawns `num_workers` threads (0 = everything runs inline on the
  // caller).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  // Runs fn(0..n-1), distributing indices over the workers plus the
  // calling thread, and returns once every index has completed. Not
  // reentrant: fn must not call ParallelFor on the same pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Process-wide pool sized by MVTEE_THREADS ("1" or "0" → no workers,
  // everything inline).
  static ThreadPool& Shared();

  // Resolves a MVTEE_THREADS value against the hardware default.
  // `env_value` may be nullptr (unset). Non-numeric, negative,
  // empty or absurdly large values are rejected with a logged warning
  // and `hardware` is returned. Exposed for tests; Shared() uses it.
  static size_t ResolveThreadCount(const char* env_value, size_t hardware);

 private:
  struct Job {
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};    // next index to claim
    std::atomic<size_t> done{0};    // indices completed
    std::atomic<size_t> active{0};  // workers currently inside RunShard
    std::mutex mu;
    std::condition_variable cv;
  };

  void WorkerLoop();
  static void RunShard(Job* job);

  std::mutex mu_;
  std::condition_variable cv_;
  Job* job_ = nullptr;  // guarded by mu_
  bool stop_ = false;   // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace mvtee::util
