// Process-wide accounting of bytes memcpy'd on the data plane.
//
// Every place that still copies record/tensor payloads (legacy
// Serialize/Deserialize, the allocating Seal/Open wrappers, transport
// fallbacks) charges the copied byte count here; the pooled zero-copy
// paths charge nothing. bench_data_plane diffs this counter around a
// checkpoint round trip to prove the copy reduction, and the obs
// exporters publish it as `dataplane.bytes_copied`. Lives in util
// (header-only atomic) because util cannot depend on obs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mvtee::util {

inline std::atomic<uint64_t>& DataPlaneCopyCounter() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

inline void CountDataPlaneCopy(size_t n) {
  DataPlaneCopyCounter().fetch_add(n, std::memory_order_relaxed);
}

inline uint64_t DataPlaneBytesCopied() {
  return DataPlaneCopyCounter().load(std::memory_order_relaxed);
}

}  // namespace mvtee::util
