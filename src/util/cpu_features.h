// Runtime CPU feature detection and SIMD dispatch policy (DESIGN.md §10).
//
// The vectorized hot paths (AVX2/FMA GEMM, AES-NI + PCLMUL GCM) are
// compiled into dedicated translation units with per-file ISA flags and
// selected at runtime: a call site asks `UseAvx2Gemm()` /
// `UseAesGcmAccel()` on every dispatch. A dispatch decision composes
// three independent gates —
//   1. the binary carries the vector TU (per-arch CMake; the TU
//      self-reports via its Accelerated*() probe),
//   2. CPUID says the host executes the instructions,
//   3. the operator has not forced scalar via MVTEE_SIMD=0.
// The predicates here cover gates 2 and 3; call sites AND them with
// gate 1. Gate 3 exists so the scalar fallbacks stay first-class: CI
// runs the
// crypto/GEMM suites once natively and once under MVTEE_SIMD=0, and the
// ScopedForceScalar hook lets a single test process compare both paths
// bitwise.
#pragma once

#include <string>

namespace mvtee::util {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool aes = false;      // AES-NI
  bool pclmul = false;   // carry-less multiply (GHASH)
  bool ssse3 = false;    // pshufb, needed by the GCM byte-swap path
  bool avx512f = false;  // detected and reported, not yet dispatched on
};

// CPUID-derived features of this host, detected once per process.
const CpuFeatures& HostCpuFeatures();

// False when MVTEE_SIMD=0 is set (or a ScopedForceScalar is live):
// every accelerated path must fall back to its portable twin.
bool SimdEnabled();

// Dispatch predicates combining compiled-in TU + CPUID + SimdEnabled().
bool UseAvx2Gemm();
bool UseAesGcmAccel();
// Elementwise/activation kernels need AVX2 only (no FMA: their vector
// tier is written mul-then-add so it stays bitwise identical to the
// scalar TU, which cannot contract into fused multiply-adds).
bool UseAvx2Elementwise();

// Space-separated list of detected features ("avx2 fma aes pclmul ..."),
// or "scalar" when none — recorded into bench JSON so a baseline says
// what silicon produced it.
std::string CpuFeatureString();

// RAII test/bench hook: forces scalar dispatch process-wide while live,
// as if MVTEE_SIMD=0 had been set. Not reentrancy-counted — do not nest.
class ScopedForceScalar {
 public:
  ScopedForceScalar();
  ~ScopedForceScalar();
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;
};

}  // namespace mvtee::util
