#include "util/rng.h"

#include <cmath>

#include "util/status.h"

namespace mvtee::util {

double Rng::Normal() {
  // Box–Muller; discard the second value for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::SampleIndexByWeight(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    MVTEE_CHECK(w >= 0.0);
    total += w;
  }
  MVTEE_CHECK(total > 0.0);
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point edge: return last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

}  // namespace mvtee::util
