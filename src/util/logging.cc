#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstring>

namespace mvtee::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {
void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message) {
  using namespace std::chrono;
  auto now = duration_cast<microseconds>(
                 steady_clock::now().time_since_epoch())
                 .count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %10lld.%06lld %s:%d] %s\n", LevelTag(level),
               static_cast<long long>(now / 1000000),
               static_cast<long long>(now % 1000000), Basename(file), line,
               message.c_str());
}
}  // namespace internal

}  // namespace mvtee::util
