#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace mvtee::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::atomic<uint64_t (*)()> g_trace_provider{nullptr};
std::mutex g_mutex;
std::once_flag g_env_once;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

// Applies MVTEE_LOG_LEVEL exactly once. Called from Get/SetLogLevel, so
// the diagnostic for a bad value cannot go through MVTEE_WLOG (whose
// level check re-enters GetLogLevel under the same once flag) —
// ResolveLogLevel emits via internal::EmitLog directly.
void ApplyEnvLevelOnce() {
  std::call_once(g_env_once, [] {
    if (const char* env = std::getenv("MVTEE_LOG_LEVEL")) {
      g_level.store(ResolveLogLevel(env, g_level.load()));
    }
  });
}
}  // namespace

void SetLogLevel(LogLevel level) {
  // Run the env application first so it cannot later be (mis)read as
  // overriding this explicit choice.
  ApplyEnvLevelOnce();
  g_level.store(level);
}

LogLevel GetLogLevel() {
  ApplyEnvLevelOnce();
  return g_level.load();
}

LogLevel ResolveLogLevel(const char* env_value, LogLevel fallback) {
  if (env_value == nullptr) return fallback;
  const std::string v(env_value);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warning" || v == "warn") return LogLevel::kWarning;
  if (v == "error") return LogLevel::kError;
  if (LogLevel::kWarning >= g_level.load()) {
    internal::EmitLog(LogLevel::kWarning, __FILE__, __LINE__,
                      "MVTEE_LOG_LEVEL='" + v +
                          "' is not one of debug|info|warning|error; "
                          "keeping current level");
  }
  return fallback;
}

void SetLogTraceIdProvider(uint64_t (*provider)()) {
  g_trace_provider.store(provider, std::memory_order_release);
}

namespace internal {
void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message) {
  using namespace std::chrono;
  auto now = duration_cast<microseconds>(
                 steady_clock::now().time_since_epoch())
                 .count();
  uint64_t trace_id = 0;
  if (auto* provider = g_trace_provider.load(std::memory_order_acquire)) {
    trace_id = provider();
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  if (trace_id != 0) {
    std::fprintf(stderr, "[%s %10lld.%06lld %s:%d t=%llu] %s\n",
                 LevelTag(level), static_cast<long long>(now / 1000000),
                 static_cast<long long>(now % 1000000), Basename(file), line,
                 static_cast<unsigned long long>(trace_id), message.c_str());
  } else {
    std::fprintf(stderr, "[%s %10lld.%06lld %s:%d] %s\n", LevelTag(level),
                 static_cast<long long>(now / 1000000),
                 static_cast<long long>(now % 1000000), Basename(file), line,
                 message.c_str());
  }
}
}  // namespace internal

}  // namespace mvtee::util
