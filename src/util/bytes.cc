#include "util/bytes.h"

namespace mvtee::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

bool HexDecode(std::string_view hex, Bytes& out) {
  if (hex.size() % 2 != 0) return false;
  Bytes result;
  result.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    result.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  out = std::move(result);
  return true;
}

void AppendU8(Bytes& out, uint8_t v) { out.push_back(v); }

void AppendU16(Bytes& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

void AppendU32(Bytes& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

void AppendU64(Bytes& out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v >> 32));
  AppendU32(out, static_cast<uint32_t>(v));
}

void AppendF32(Bytes& out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU32(out, bits);
}

void AppendBytes(Bytes& out, ByteSpan data) {
  out.insert(out.end(), data.begin(), data.end());
}

void AppendLengthPrefixed(Bytes& out, ByteSpan data) {
  AppendU32(out, static_cast<uint32_t>(data.size()));
  AppendBytes(out, data);
}

void AppendLengthPrefixedStr(Bytes& out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

bool ByteReader::ReadU8(uint8_t& v) {
  if (remaining() < 1) return false;
  v = data_[pos_++];
  return true;
}

bool ByteReader::ReadU16(uint16_t& v) {
  if (remaining() < 2) return false;
  v = static_cast<uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return true;
}

bool ByteReader::ReadU32(uint32_t& v) {
  if (remaining() < 4) return false;
  v = static_cast<uint32_t>(data_[pos_]) << 24 |
      static_cast<uint32_t>(data_[pos_ + 1]) << 16 |
      static_cast<uint32_t>(data_[pos_ + 2]) << 8 |
      static_cast<uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return true;
}

bool ByteReader::ReadU64(uint64_t& v) {
  uint32_t hi, lo;
  size_t save = pos_;
  if (!ReadU32(hi) || !ReadU32(lo)) {
    pos_ = save;
    return false;
  }
  v = (static_cast<uint64_t>(hi) << 32) | lo;
  return true;
}

bool ByteReader::ReadF32(float& v) {
  uint32_t bits;
  if (!ReadU32(bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool ByteReader::ReadBytes(size_t n, Bytes& out) {
  if (remaining() < n) return false;
  out.assign(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return true;
}

bool ByteReader::ReadSpan(size_t n, ByteSpan& out) {
  if (remaining() < n) return false;
  out = data_.subspan(pos_, n);
  pos_ += n;
  return true;
}

bool ByteReader::ReadLengthPrefixed(Bytes& out) {
  size_t save = pos_;
  uint32_t len;
  if (!ReadU32(len) || remaining() < len) {
    pos_ = save;
    return false;
  }
  return ReadBytes(len, out);
}

bool ByteReader::ReadLengthPrefixedStr(std::string& out) {
  Bytes tmp;
  if (!ReadLengthPrefixed(tmp)) return false;
  out.assign(tmp.begin(), tmp.end());
  return true;
}

bool ByteReader::Skip(size_t n) {
  if (remaining() < n) return false;
  pos_ += n;
  return true;
}

bool ConstantTimeEqual(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) return false;
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace mvtee::util
