// Wall-clock helpers for benchmarks and throughput/latency accounting.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>

namespace mvtee::util {

inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// CPU time consumed by the calling thread. Used by the virtual-time
// performance model: on a core-limited simulation host, wall-clock
// durations include scheduler preemption, while thread CPU time is the
// faithful cost of the work itself.
inline int64_t ThreadCpuMicros() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000 +
         ts.tv_nsec / 1'000;
}

// Simple scoped timer accumulating into an int64 microsecond counter.
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t& accumulator_us)
      : accumulator_(accumulator_us), start_(NowMicros()) {}
  ~ScopedTimer() { accumulator_ += NowMicros() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t& accumulator_;
  int64_t start_;
};

}  // namespace mvtee::util
