// Deterministic pseudo-random number generation.
//
// All randomized components of MVTEE (partition contraction, variant
// selection, synthetic weights, fault campaigns) draw from an explicitly
// seeded Rng so that experiments are reproducible run-to-run. The crypto
// layer wraps this separately (crypto/rand.h) with an interface that can
// be swapped for a real entropy source.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mvtee::util {

// splitmix64: used to expand a single seed into xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** — fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t UniformU64(uint64_t bound) {
    // Lemire's rejection-free-ish method with rejection for exactness.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformU64(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi) {
    return lo + static_cast<float>(UniformDouble()) * (hi - lo);
  }

  // Standard normal via Box–Muller (one value per call; simple, adequate).
  double Normal();

  // Sample an index proportionally to non-negative weights. Total weight
  // must be positive.
  size_t SampleIndexByWeight(const std::vector<double>& weights);

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformU64(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace mvtee::util
