// Model partitioning (paper §4.1, Algorithm 1).
//
// Divides a model graph into subgraphs whose boundaries become MVX
// checkpoints. Two modes mirror the implementation in §5.1:
//  - RandomContraction: Karger-style randomized edge contraction with a
//    customizable soft-preference weight function (default: bias toward
//    balanced partition costs) and hard constraints (default: partition
//    cost cap + quotient-graph acyclicity, which pipelining requires).
//  - ManualSlice: expert-provided partition boundaries.
//
// BuildPartitionedModel extracts one executable stage subgraph per
// partition plus the inter-stage wiring needed by the pipeline engine.
#pragma once

#include <functional>
#include <vector>

#include "graph/ir.h"
#include "util/rng.h"
#include "util/status.h"

namespace mvtee::partition {

struct Partition {
  std::vector<graph::NodeId> nodes;  // sorted ascending
  double cost = 0.0;                 // estimated FLOPs
};

struct PartitionSet {
  // Topological (pipeline) order: stage i only consumes from stages < i.
  std::vector<Partition> partitions;

  int64_t num_partitions() const {
    return static_cast<int64_t>(partitions.size());
  }
  // Balance metric: max partition cost / mean partition cost (1.0 =
  // perfectly balanced).
  double CostImbalance() const;
};

struct PartitionOptions {
  int64_t target_partitions = 5;
  uint64_t seed = 0;
  // Soft preference: sampling weight for contracting an edge whose
  // endpoint partitions currently have costs (cost_a, cost_b) out of
  // `total`. Higher = more likely. Default biases toward merging small
  // partitions (balanced result).
  std::function<double(double cost_a, double cost_b, double total)> weight_fn;
  // Extra hard constraint on a candidate merge (beyond built-in
  // acyclicity): return false to forbid. Optional.
  std::function<bool(const Partition& a, const Partition& b)> constraint_fn;
  // Built-in hard constraint: merged partition cost must not exceed this
  // fraction of total model cost. <= 0 disables.
  double max_cost_fraction = 0.0;  // default: derived from target count
  // Retries of the whole contraction before giving up (each with a
  // different derived seed).
  int max_attempts = 8;
};

// Algorithm 1: random contraction until `target_partitions` remain.
util::Result<PartitionSet> RandomContraction(const graph::Graph& graph,
                                             const PartitionOptions& options);

// Runs RandomContraction `trials` times and returns the set with the
// best (lowest) cost imbalance — the paper's "run multiple times to
// identify globally optimal configurations".
util::Result<PartitionSet> BestOfRandomContraction(
    const graph::Graph& graph, const PartitionOptions& options, int trials);

// Manual mode: caller supplies the node groups. Groups must exactly
// cover all nodes and the quotient graph must be acyclic.
util::Result<PartitionSet> ManualSlice(
    const graph::Graph& graph,
    const std::vector<std::vector<graph::NodeId>>& groups);

// Where a stage input comes from.
struct StageInputSource {
  int32_t stage = -1;         // producing stage; -1 = external model input
  int32_t index = 0;          // output index in that stage / model input idx
};

struct PartitionedModel {
  std::vector<graph::Graph> stages;                  // pipeline order
  std::vector<std::vector<StageInputSource>> stage_inputs;
  // For each original model output: (stage, output index within stage).
  std::vector<StageInputSource> model_outputs;
  PartitionSet partition_set;

  int64_t num_stages() const { return static_cast<int64_t>(stages.size()); }
};

// Extracts per-partition subgraphs and wiring. Boundary tensors keep
// their producing node's inferred shape.
util::Result<PartitionedModel> BuildPartitionedModel(
    const graph::Graph& graph, const PartitionSet& set);

}  // namespace mvtee::partition
