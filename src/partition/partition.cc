#include "partition/partition.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>
#include <set>

namespace mvtee::partition {

using graph::Graph;
using graph::Node;
using graph::NodeId;
using graph::OpType;

double PartitionSet::CostImbalance() const {
  if (partitions.empty()) return 0.0;
  double total = 0.0, max_cost = 0.0;
  for (const Partition& p : partitions) {
    total += p.cost;
    max_cost = std::max(max_cost, p.cost);
  }
  if (total <= 0.0) return 1.0;
  return max_cost / (total / static_cast<double>(partitions.size()));
}

namespace {

// Union-find with path compression.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

struct EdgeList {
  std::vector<std::pair<NodeId, NodeId>> edges;  // producer -> consumer
};

EdgeList CollectEdges(const Graph& g) {
  EdgeList list;
  for (const Node& n : g.nodes()) {
    for (NodeId in : n.inputs) list.edges.push_back({in, n.id});
  }
  return list;
}

// Quotient adjacency (partition rep -> set of successor reps).
std::map<size_t, std::set<size_t>> QuotientAdjacency(const EdgeList& edges,
                                                     UnionFind& uf) {
  std::map<size_t, std::set<size_t>> adj;
  for (const auto& [u, v] : edges.edges) {
    size_t pu = uf.Find(static_cast<size_t>(u));
    size_t pv = uf.Find(static_cast<size_t>(v));
    if (pu != pv) adj[pu].insert(pv);
  }
  return adj;
}

// Would merging partitions a and b (with an existing edge a->b) create a
// cycle in the quotient graph? True iff some path a -> ... -> b passes
// through a third partition.
bool MergeCreatesCycle(const std::map<size_t, std::set<size_t>>& adj, size_t a,
                       size_t b) {
  std::queue<size_t> frontier;
  std::set<size_t> visited;
  auto it = adj.find(a);
  if (it == adj.end()) return false;
  for (size_t succ : it->second) {
    if (succ != b) {
      frontier.push(succ);
      visited.insert(succ);
    }
  }
  while (!frontier.empty()) {
    size_t cur = frontier.front();
    frontier.pop();
    if (cur == b) return true;
    auto cit = adj.find(cur);
    if (cit == adj.end()) continue;
    for (size_t succ : cit->second) {
      if (visited.insert(succ).second) frontier.push(succ);
    }
  }
  return false;
}

// Orders final partitions topologically (Kahn; deterministic tie-break by
// smallest member node id).
std::vector<std::vector<NodeId>> TopoOrderPartitions(const Graph& g,
                                                     UnionFind& uf) {
  std::map<size_t, std::vector<NodeId>> members;
  for (const Node& n : g.nodes()) {
    members[uf.Find(static_cast<size_t>(n.id))].push_back(n.id);
  }
  EdgeList edges = CollectEdges(g);
  auto adj = QuotientAdjacency(edges, uf);
  std::map<size_t, int> indegree;
  for (const auto& [rep, _] : members) indegree[rep] = 0;
  for (const auto& [rep, succs] : adj) {
    (void)rep;
    for (size_t s : succs) indegree[s]++;
  }
  // Min-heap on smallest member id for determinism.
  auto cmp = [&](size_t a, size_t b) {
    return members[a].front() > members[b].front();
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(cmp)> ready(cmp);
  for (const auto& [rep, deg] : indegree) {
    if (deg == 0) ready.push(rep);
  }
  std::vector<std::vector<NodeId>> ordered;
  while (!ready.empty()) {
    size_t rep = ready.top();
    ready.pop();
    ordered.push_back(members[rep]);
    auto it = adj.find(rep);
    if (it == adj.end()) continue;
    for (size_t s : it->second) {
      if (--indegree[s] == 0) ready.push(s);
    }
  }
  MVTEE_CHECK(ordered.size() == members.size());  // acyclic by invariant
  return ordered;
}

PartitionSet MakePartitionSet(const Graph& g, UnionFind& uf,
                              const std::vector<double>& node_costs) {
  PartitionSet set;
  for (auto& nodes : TopoOrderPartitions(g, uf)) {
    Partition p;
    std::sort(nodes.begin(), nodes.end());
    p.nodes = std::move(nodes);
    for (NodeId id : p.nodes) p.cost += node_costs[static_cast<size_t>(id)];
    set.partitions.push_back(std::move(p));
  }
  return set;
}

util::Result<PartitionSet> RandomContractionAttempt(
    const Graph& g, const PartitionOptions& options, uint64_t seed,
    double cost_cap_fraction) {
  const size_t n = static_cast<size_t>(g.num_nodes());
  const std::vector<double> node_costs = g.EstimateNodeCosts();
  const double total_cost =
      std::accumulate(node_costs.begin(), node_costs.end(), 0.0);

  util::Rng rng(seed);
  UnionFind uf(n);
  std::map<size_t, double> part_cost;
  for (size_t i = 0; i < n; ++i) part_cost[i] = node_costs[i];
  size_t num_partitions = n;

  EdgeList edges = CollectEdges(g);

  auto default_weight = [](double a, double b, double total) {
    // Favor merging small partitions: weight decays with merged cost.
    double frac = (a + b) / std::max(total, 1e-12);
    return 1.0 / (0.02 + frac);
  };
  auto weight_fn = options.weight_fn ? options.weight_fn : default_weight;

  while (num_partitions > static_cast<size_t>(options.target_partitions)) {
    // Candidate super-edges between distinct partitions.
    auto adj = QuotientAdjacency(edges, uf);
    std::vector<std::pair<size_t, size_t>> candidates;
    std::vector<double> weights;
    for (const auto& [pu, succs] : adj) {
      for (size_t pv : succs) {
        candidates.push_back({pu, pv});
        weights.push_back(
            std::max(1e-12, weight_fn(part_cost[pu], part_cost[pv],
                                      total_cost)));
      }
    }
    bool merged = false;
    // Rejection sampling over the weighted candidates.
    while (!candidates.empty()) {
      size_t idx = rng.SampleIndexByWeight(weights);
      auto [pu, pv] = candidates[idx];

      bool ok = true;
      if (cost_cap_fraction > 0.0 &&
          part_cost[pu] + part_cost[pv] > cost_cap_fraction * total_cost) {
        ok = false;
      }
      if (ok && MergeCreatesCycle(adj, pu, pv)) ok = false;
      if (ok && options.constraint_fn) {
        // Materialize the two partitions for the user constraint.
        Partition a, bpart;
        for (size_t i = 0; i < n; ++i) {
          size_t rep = uf.Find(i);
          if (rep == pu) a.nodes.push_back(static_cast<NodeId>(i));
          if (rep == pv) bpart.nodes.push_back(static_cast<NodeId>(i));
        }
        a.cost = part_cost[pu];
        bpart.cost = part_cost[pv];
        if (!options.constraint_fn(a, bpart)) ok = false;
      }
      if (ok) {
        double merged_cost = part_cost[pu] + part_cost[pv];
        uf.Union(pu, pv);
        size_t rep = uf.Find(pu);
        part_cost.erase(pu);
        part_cost.erase(pv);
        part_cost[rep] = merged_cost;
        --num_partitions;
        merged = true;
        break;
      }
      candidates.erase(candidates.begin() + static_cast<int64_t>(idx));
      weights.erase(weights.begin() + static_cast<int64_t>(idx));
    }
    if (!merged) {
      return util::FailedPrecondition(
          "no contractible edge satisfies the constraints at " +
          std::to_string(num_partitions) + " partitions");
    }
  }
  return MakePartitionSet(g, uf, node_costs);
}

}  // namespace

util::Result<PartitionSet> RandomContraction(const Graph& g,
                                             const PartitionOptions& options) {
  MVTEE_RETURN_IF_ERROR(g.Validate());
  if (options.target_partitions < 1) {
    return util::InvalidArgument("target_partitions must be >= 1");
  }
  if (options.target_partitions > g.num_nodes()) {
    return util::InvalidArgument("more partitions than nodes");
  }
  // Default cost cap: twice the ideal share (gives the sampler room while
  // preventing one partition from swallowing the model).
  double cap = options.max_cost_fraction > 0.0
                   ? options.max_cost_fraction
                   : 2.0 / static_cast<double>(options.target_partitions);
  util::Status last_error = util::Internal("no attempts made");
  for (int attempt = 0; attempt < std::max(1, options.max_attempts);
       ++attempt) {
    uint64_t seed = options.seed * 1000003ULL + static_cast<uint64_t>(attempt);
    auto result = RandomContractionAttempt(g, options, seed, cap);
    if (result.ok()) return result;
    last_error = result.status();
    cap = std::min(1.0, cap * 1.3);  // progressively relax the soft cap
  }
  return last_error;
}

util::Result<PartitionSet> BestOfRandomContraction(
    const Graph& g, const PartitionOptions& options, int trials) {
  util::Status last_error = util::Internal("no trials run");
  PartitionSet best;
  double best_imbalance = 0.0;
  bool have_best = false;
  for (int t = 0; t < std::max(1, trials); ++t) {
    PartitionOptions opts = options;
    opts.seed = options.seed + static_cast<uint64_t>(t) * 7919ULL;
    auto result = RandomContraction(g, opts);
    if (!result.ok()) {
      last_error = result.status();
      continue;
    }
    double imbalance = result->CostImbalance();
    if (!have_best || imbalance < best_imbalance) {
      best = std::move(*result);
      best_imbalance = imbalance;
      have_best = true;
    }
  }
  if (!have_best) return last_error;
  return best;
}

util::Result<PartitionSet> ManualSlice(
    const Graph& g, const std::vector<std::vector<NodeId>>& groups) {
  MVTEE_RETURN_IF_ERROR(g.Validate());
  const size_t n = static_cast<size_t>(g.num_nodes());
  std::vector<int> assignment(n, -1);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    for (NodeId id : groups[gi]) {
      if (id < 0 || static_cast<size_t>(id) >= n) {
        return util::InvalidArgument("node id out of range");
      }
      if (assignment[static_cast<size_t>(id)] != -1) {
        return util::InvalidArgument("node assigned to multiple groups");
      }
      assignment[static_cast<size_t>(id)] = static_cast<int>(gi);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (assignment[i] == -1) {
      return util::InvalidArgument("node " + std::to_string(i) +
                                   " not covered by any group");
    }
  }
  // Verify quotient acyclicity via union-find reuse.
  UnionFind uf(n);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    for (size_t k = 1; k < groups[gi].size(); ++k) {
      uf.Union(static_cast<size_t>(groups[gi][0]),
               static_cast<size_t>(groups[gi][k]));
    }
  }
  // Kahn over the quotient detects cycles (TopoOrderPartitions aborts on
  // cycle, so check here first).
  {
    EdgeList edges = CollectEdges(g);
    auto adj = QuotientAdjacency(edges, uf);
    std::map<size_t, int> indegree;
    for (const Node& node : g.nodes()) {
      indegree[uf.Find(static_cast<size_t>(node.id))] = 0;
    }
    for (const auto& [rep, succs] : adj) {
      (void)rep;
      for (size_t s : succs) indegree[s]++;
    }
    std::queue<size_t> ready;
    for (const auto& [rep, deg] : indegree) {
      if (deg == 0) ready.push(rep);
    }
    size_t seen = 0;
    while (!ready.empty()) {
      size_t rep = ready.front();
      ready.pop();
      ++seen;
      auto it = adj.find(rep);
      if (it == adj.end()) continue;
      for (size_t s : it->second) {
        if (--indegree[s] == 0) ready.push(s);
      }
    }
    if (seen != indegree.size()) {
      return util::InvalidArgument(
          "manual slice produces a cyclic partition graph");
    }
  }
  return MakePartitionSet(g, uf, g.EstimateNodeCosts());
}

util::Result<PartitionedModel> BuildPartitionedModel(const Graph& g,
                                                     const PartitionSet& set) {
  MVTEE_RETURN_IF_ERROR(g.Validate());
  auto shapes_or = g.InferShapes();
  if (!shapes_or.ok()) return shapes_or.status();
  const auto& shapes = *shapes_or;

  const size_t n = static_cast<size_t>(g.num_nodes());
  std::vector<int32_t> stage_of(n, -1);
  for (size_t si = 0; si < set.partitions.size(); ++si) {
    for (NodeId id : set.partitions[si].nodes) {
      if (id < 0 || static_cast<size_t>(id) >= n) {
        return util::InvalidArgument("partition node id out of range");
      }
      if (stage_of[static_cast<size_t>(id)] != -1) {
        return util::InvalidArgument("node in multiple partitions");
      }
      stage_of[static_cast<size_t>(id)] = static_cast<int32_t>(si);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (stage_of[i] == -1) {
      return util::InvalidArgument("node not covered by partitions");
    }
  }

  auto consumers = g.BuildConsumers();
  std::set<NodeId> model_output_nodes(g.outputs().begin(), g.outputs().end());

  // Which nodes must each stage export?
  //   - consumed by a node in a different stage, or
  //   - a model output.
  std::vector<std::vector<NodeId>> stage_exports(set.partitions.size());
  for (const Node& node : g.nodes()) {
    const int32_t si = stage_of[static_cast<size_t>(node.id)];
    bool exported = model_output_nodes.count(node.id) > 0;
    for (NodeId c : consumers[static_cast<size_t>(node.id)]) {
      if (stage_of[static_cast<size_t>(c)] != si) {
        exported = true;
        break;
      }
    }
    if (exported) stage_exports[static_cast<size_t>(si)].push_back(node.id);
  }
  // Export order: ascending original node id (deterministic).
  std::map<NodeId, StageInputSource> export_slot;
  for (size_t si = 0; si < stage_exports.size(); ++si) {
    std::sort(stage_exports[si].begin(), stage_exports[si].end());
    for (size_t k = 0; k < stage_exports[si].size(); ++k) {
      export_slot[stage_exports[si][k]] = {static_cast<int32_t>(si),
                                           static_cast<int32_t>(k)};
    }
  }

  // Model input index per input node.
  std::map<NodeId, int32_t> model_input_index;
  for (size_t k = 0; k < g.inputs().size(); ++k) {
    model_input_index[g.inputs()[k]] = static_cast<int32_t>(k);
  }

  PartitionedModel pm;
  pm.partition_set = set;
  pm.stages.reserve(set.partitions.size());
  pm.stage_inputs.resize(set.partitions.size());

  for (size_t si = 0; si < set.partitions.size(); ++si) {
    const Partition& part = set.partitions[si];
    std::set<NodeId> members(part.nodes.begin(), part.nodes.end());

    // Subgraph inputs: in-stage original model inputs, plus producers from
    // other stages — together, sorted by original id.
    std::set<NodeId> input_nodes;
    for (NodeId id : part.nodes) {
      const Node& node = g.node(id);
      if (node.op == OpType::kInput) input_nodes.insert(id);
      for (NodeId in : node.inputs) {
        if (!members.count(in)) input_nodes.insert(in);
      }
    }

    Graph sub;
    std::map<NodeId, NodeId> remap;
    for (NodeId id : input_nodes) {
      NodeId new_id = sub.AddInput(g.node(id).name,
                                   shapes[static_cast<size_t>(id)]);
      remap[id] = new_id;
      StageInputSource src;
      if (members.count(id) && g.node(id).op == OpType::kInput) {
        src.stage = -1;
        src.index = model_input_index.at(id);
      } else {
        src = export_slot.at(id);
        MVTEE_CHECK(src.stage < static_cast<int32_t>(si));
      }
      pm.stage_inputs[si].push_back(src);
    }

    for (NodeId id : part.nodes) {
      const Node& node = g.node(id);
      if (node.op == OpType::kInput) continue;  // already an input
      std::vector<NodeId> mapped_inputs;
      mapped_inputs.reserve(node.inputs.size());
      for (NodeId in : node.inputs) mapped_inputs.push_back(remap.at(in));
      for (const std::string& w : node.weights) {
        if (!sub.FindInitializer(w)) {
          sub.AddInitializer(w, *g.FindInitializer(w));
        }
      }
      remap[id] = sub.AddNode(node.name, node.op, std::move(mapped_inputs),
                              node.weights, node.attrs);
    }

    for (NodeId out : stage_exports[si]) {
      sub.MarkOutput(remap.at(out));
    }
    MVTEE_RETURN_IF_ERROR(sub.Validate());
    pm.stages.push_back(std::move(sub));
  }

  pm.model_outputs.reserve(g.outputs().size());
  for (NodeId out : g.outputs()) {
    pm.model_outputs.push_back(export_slot.at(out));
  }
  return pm;
}

}  // namespace mvtee::partition
