// Synthetic model zoo: structurally faithful, scaled versions of the
// seven models the paper evaluates (EfficientNet-b7, GoogleNet,
// Inception V3, MnasNet, MobileNet V3, ResNet-152, ResNet-50).
//
// Substitution note (see DESIGN.md §2): pre-trained weights are not
// required to reproduce the paper's *performance* experiments — those
// measure partitioning/MVX/crypto overheads, which depend on topology
// and tensor sizes, not on learned weight values. Weights here are
// deterministic He-initialized pseudo-random tensors; widths and depths
// are scaled by ZooConfig so the full benchmark suite completes on a
// laptop-class machine while preserving each model's block structure
// (residual bottlenecks, inception branches, depthwise+SE blocks, …)
// and relative size ordering.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "graph/ir.h"

namespace mvtee::graph {

enum class ModelKind {
  kEfficientNetB7 = 0,
  kGoogleNet,
  kInceptionV3,
  kMnasNet,
  kMobileNetV3,
  kResNet152,
  kResNet50,
};

struct ZooConfig {
  int64_t batch = 1;
  int64_t input_hw = 64;      // paper default 224; scaled for simulation
  double width_mult = 0.25;   // channel width multiplier
  double depth_mult = 0.5;    // block repeat multiplier
  int64_t num_classes = 100;
  uint64_t seed = 42;
};

std::string_view ModelName(ModelKind kind);
std::vector<ModelKind> AllModels();

// Builds the requested model; the result validates and shape-infers.
Graph BuildModel(ModelKind kind, const ZooConfig& config = {});

}  // namespace mvtee::graph
