#include "graph/ir.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace mvtee::graph {

using tensor::Shape;
using tensor::Tensor;

std::string_view OpTypeName(OpType op) {
  switch (op) {
    case OpType::kInput: return "Input";
    case OpType::kConv2d: return "Conv2d";
    case OpType::kGemm: return "Gemm";
    case OpType::kRelu: return "Relu";
    case OpType::kRelu6: return "Relu6";
    case OpType::kSigmoid: return "Sigmoid";
    case OpType::kHardSwish: return "HardSwish";
    case OpType::kTanh: return "Tanh";
    case OpType::kMaxPool: return "MaxPool";
    case OpType::kAvgPool: return "AvgPool";
    case OpType::kGlobalAvgPool: return "GlobalAvgPool";
    case OpType::kBatchNorm: return "BatchNorm";
    case OpType::kAdd: return "Add";
    case OpType::kMul: return "Mul";
    case OpType::kConcat: return "Concat";
    case OpType::kFlatten: return "Flatten";
    case OpType::kSoftmax: return "Softmax";
    case OpType::kIdentity: return "Identity";
    case OpType::kScale: return "Scale";
    case OpType::kReshape: return "Reshape";
  }
  return "Unknown";
}

int64_t Attributes::GetInt(const std::string& key, int64_t def) const {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return def;
  if (auto* v = std::get_if<int64_t>(&it->second)) return *v;
  return def;
}

float Attributes::GetFloat(const std::string& key, float def) const {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return def;
  if (auto* v = std::get_if<float>(&it->second)) return *v;
  return def;
}

std::vector<int64_t> Attributes::GetInts(const std::string& key) const {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return {};
  if (auto* v = std::get_if<std::vector<int64_t>>(&it->second)) return *v;
  return {};
}

NodeId Graph::AddInput(const std::string& name, Shape shape) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.id = id;
  n.name = name;
  n.op = OpType::kInput;
  nodes_.push_back(std::move(n));
  inputs_.push_back(id);
  input_shapes_[id] = std::move(shape);
  return id;
}

NodeId Graph::AddNode(const std::string& name, OpType op,
                      std::vector<NodeId> inputs,
                      std::vector<std::string> weights, Attributes attrs) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  for (NodeId in : inputs) {
    MVTEE_CHECK(in >= 0 && in < id);  // topological append-only invariant
  }
  Node n;
  n.id = id;
  n.name = name;
  n.op = op;
  n.inputs = std::move(inputs);
  n.weights = std::move(weights);
  n.attrs = std::move(attrs);
  nodes_.push_back(std::move(n));
  return id;
}

void Graph::AddInitializer(const std::string& name, Tensor value) {
  MVTEE_CHECK(!initializers_frozen_);
  initializers_[name] = std::move(value);
}

void Graph::MarkOutput(NodeId id) {
  MVTEE_CHECK(id >= 0 && id < num_nodes());
  outputs_.push_back(id);
}

const Tensor* Graph::FindInitializer(const std::string& name) const {
  auto it = initializers_.find(name);
  return it == initializers_.end() ? nullptr : &it->second;
}

Tensor* Graph::MutableInitializer(const std::string& name) {
  MVTEE_CHECK(!initializers_frozen_);
  auto it = initializers_.find(name);
  return it == initializers_.end() ? nullptr : &it->second;
}

const Shape& Graph::input_shape(NodeId id) const {
  auto it = input_shapes_.find(id);
  MVTEE_CHECK(it != input_shapes_.end());
  return it->second;
}

std::vector<std::vector<NodeId>> Graph::BuildConsumers() const {
  std::vector<std::vector<NodeId>> consumers(nodes_.size());
  for (const Node& n : nodes_) {
    for (NodeId in : n.inputs) {
      consumers[static_cast<size_t>(in)].push_back(n.id);
    }
  }
  return consumers;
}

std::vector<NodeId> Graph::TopologicalOrder() const {
  std::vector<NodeId> order(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) order[i] = static_cast<NodeId>(i);
  return order;
}

util::Status Graph::Validate() const {
  if (inputs_.empty()) return util::InvalidArgument("graph has no inputs");
  if (outputs_.empty()) return util::InvalidArgument("graph has no outputs");
  for (const Node& n : nodes_) {
    for (NodeId in : n.inputs) {
      if (in < 0 || in >= n.id) {
        return util::InvalidArgument("node " + n.name +
                                     " has non-topological input edge");
      }
    }
    for (const std::string& w : n.weights) {
      if (!initializers_.count(w)) {
        return util::NotFound("initializer '" + w + "' for node " + n.name);
      }
    }
    if (n.op == OpType::kInput && !input_shapes_.count(n.id)) {
      return util::InvalidArgument("input node without shape: " + n.name);
    }
  }
  for (NodeId out : outputs_) {
    if (out < 0 || out >= num_nodes()) {
      return util::InvalidArgument("output id out of range");
    }
  }
  return util::OkStatus();
}

namespace {
// Spatial output size for conv/pool.
int64_t ConvOut(int64_t in, int64_t k, int64_t stride, int64_t pad) {
  return (in + 2 * pad - k) / stride + 1;
}
}  // namespace

util::Result<std::vector<Shape>> Graph::InferShapes() const {
  // Note: deliberately does not require outputs to be marked — builders
  // call this mid-construction. Edge/weight integrity is checked inline.
  std::vector<Shape> shapes(nodes_.size());

  auto fail = [](const Node& n, const std::string& why) {
    return util::InvalidArgument("shape inference failed at " + n.name + " (" +
                                 std::string(OpTypeName(n.op)) + "): " + why);
  };

  for (const Node& n : nodes_) {
    auto in_shape = [&](size_t i) -> const Shape& {
      return shapes[static_cast<size_t>(n.inputs[i])];
    };
    switch (n.op) {
      case OpType::kInput:
        shapes[n.id] = input_shape(n.id);
        break;
      case OpType::kConv2d: {
        if (n.inputs.size() != 1 || n.weights.empty()) {
          return fail(n, "needs 1 input and weights");
        }
        const Shape& x = in_shape(0);
        if (x.rank() != 4) return fail(n, "input must be 4-D");
        const Tensor* w = FindInitializer(n.weights[0]);
        if (w == nullptr) return fail(n, "missing initializer");
        if (w->shape().rank() != 4) return fail(n, "weight must be 4-D");
        int64_t groups = n.attrs.GetInt("groups", 1);
        if (x.dim(1) != w->shape().dim(1) * groups) {
          return fail(n, "channel mismatch: input " + x.ToString() +
                             " vs weight " + w->shape().ToString());
        }
        int64_t kh = w->shape().dim(2), kw = w->shape().dim(3);
        int64_t stride = n.attrs.GetInt("stride", 1);
        int64_t pad = n.attrs.GetInt("padding", 0);
        int64_t oh = ConvOut(x.dim(2), kh, stride, pad);
        int64_t ow = ConvOut(x.dim(3), kw, stride, pad);
        if (oh <= 0 || ow <= 0) return fail(n, "non-positive spatial output");
        shapes[n.id] = Shape({x.dim(0), w->shape().dim(0), oh, ow});
        break;
      }
      case OpType::kGemm: {
        if (n.inputs.size() != 1 || n.weights.empty()) {
          return fail(n, "needs 1 input and weights");
        }
        const Shape& x = in_shape(0);
        if (x.rank() != 2) return fail(n, "input must be 2-D");
        const Tensor* w = FindInitializer(n.weights[0]);
        if (w == nullptr) return fail(n, "missing initializer");
        if (w->shape().rank() != 2 || w->shape().dim(1) != x.dim(1)) {
          return fail(n, "weight shape mismatch");
        }
        shapes[n.id] = Shape({x.dim(0), w->shape().dim(0)});
        break;
      }
      case OpType::kRelu:
      case OpType::kRelu6:
      case OpType::kSigmoid:
      case OpType::kHardSwish:
      case OpType::kTanh:
      case OpType::kSoftmax:
      case OpType::kIdentity:
      case OpType::kScale:
      case OpType::kBatchNorm: {
        if (n.inputs.size() != 1) return fail(n, "needs exactly 1 input");
        shapes[n.id] = in_shape(0);
        break;
      }
      case OpType::kMaxPool:
      case OpType::kAvgPool: {
        if (n.inputs.size() != 1) return fail(n, "needs exactly 1 input");
        const Shape& x = in_shape(0);
        if (x.rank() != 4) return fail(n, "input must be 4-D");
        int64_t k = n.attrs.GetInt("kernel", 2);
        int64_t stride = n.attrs.GetInt("stride", k);
        int64_t pad = n.attrs.GetInt("padding", 0);
        int64_t oh = ConvOut(x.dim(2), k, stride, pad);
        int64_t ow = ConvOut(x.dim(3), k, stride, pad);
        if (oh <= 0 || ow <= 0) return fail(n, "non-positive spatial output");
        shapes[n.id] = Shape({x.dim(0), x.dim(1), oh, ow});
        break;
      }
      case OpType::kGlobalAvgPool: {
        if (n.inputs.size() != 1) return fail(n, "needs exactly 1 input");
        const Shape& x = in_shape(0);
        if (x.rank() != 4) return fail(n, "input must be 4-D");
        shapes[n.id] = Shape({x.dim(0), x.dim(1), 1, 1});
        break;
      }
      case OpType::kAdd: {
        if (n.inputs.size() != 2) return fail(n, "needs exactly 2 inputs");
        if (in_shape(0) != in_shape(1)) {
          return fail(n, "operand shapes differ: " + in_shape(0).ToString() +
                             " vs " + in_shape(1).ToString());
        }
        shapes[n.id] = in_shape(0);
        break;
      }
      case OpType::kMul: {
        if (n.inputs.size() != 2) return fail(n, "needs exactly 2 inputs");
        const Shape& a = in_shape(0);
        const Shape& b = in_shape(1);
        bool broadcast_ok = a.rank() == 4 && b.rank() == 4 &&
                            a.dim(0) == b.dim(0) && a.dim(1) == b.dim(1) &&
                            b.dim(2) == 1 && b.dim(3) == 1;
        if (a != b && !broadcast_ok) return fail(n, "incompatible shapes");
        shapes[n.id] = a;
        break;
      }
      case OpType::kConcat: {
        if (n.inputs.size() < 2) return fail(n, "needs >= 2 inputs");
        int64_t axis = n.attrs.GetInt("axis", 1);
        const Shape& first = in_shape(0);
        if (axis != 1 || first.rank() != 4) {
          return fail(n, "only channel-axis 4-D concat supported");
        }
        int64_t channels = 0;
        for (size_t i = 0; i < n.inputs.size(); ++i) {
          const Shape& s = in_shape(i);
          if (s.rank() != 4 || s.dim(0) != first.dim(0) ||
              s.dim(2) != first.dim(2) || s.dim(3) != first.dim(3)) {
            return fail(n, "concat operand mismatch");
          }
          channels += s.dim(1);
        }
        shapes[n.id] =
            Shape({first.dim(0), channels, first.dim(2), first.dim(3)});
        break;
      }
      case OpType::kFlatten: {
        if (n.inputs.size() != 1) return fail(n, "needs exactly 1 input");
        const Shape& x = in_shape(0);
        if (x.rank() < 2) return fail(n, "rank must be >= 2");
        int64_t rest = 1;
        for (int64_t i = 1; i < x.rank(); ++i) rest *= x.dim(i);
        shapes[n.id] = Shape({x.dim(0), rest});
        break;
      }
      case OpType::kReshape: {
        if (n.inputs.size() != 1) return fail(n, "needs exactly 1 input");
        std::vector<int64_t> dims = n.attrs.GetInts("dims");
        if (dims.empty()) return fail(n, "reshape needs dims");
        // One dim may be -1: inferred from the remaining element count.
        const int64_t total = in_shape(0).num_elements();
        int64_t known = 1;
        int infer = -1;
        for (size_t i = 0; i < dims.size(); ++i) {
          if (dims[i] == -1) {
            if (infer >= 0) return fail(n, "reshape allows at most one -1");
            infer = static_cast<int>(i);
          } else if (dims[i] <= 0) {
            return fail(n, "reshape dims must be positive (or one -1)");
          } else {
            known *= dims[i];
          }
        }
        if (infer >= 0) {
          if (known <= 0 || total % known != 0) {
            return fail(n, "reshape cannot infer -1 dim");
          }
          dims[static_cast<size_t>(infer)] = total / known;
          known = total;
        }
        if (known != total) {
          return fail(n, "reshape must preserve element count");
        }
        shapes[n.id] = Shape(std::move(dims));
        break;
      }
    }
  }
  return shapes;
}

std::vector<double> Graph::EstimateNodeCosts() const {
  auto shapes_or = InferShapes();
  std::vector<double> costs(nodes_.size(), 1.0);
  if (!shapes_or.ok()) return costs;
  const auto& shapes = *shapes_or;

  for (const Node& n : nodes_) {
    const Shape& out = shapes[static_cast<size_t>(n.id)];
    double elems = static_cast<double>(out.num_elements());
    switch (n.op) {
      case OpType::kConv2d: {
        const Tensor* w = FindInitializer(n.weights[0]);
        double k = static_cast<double>(w->shape().dim(1) * w->shape().dim(2) *
                                       w->shape().dim(3));
        costs[n.id] = 2.0 * elems * k;
        break;
      }
      case OpType::kGemm: {
        const Tensor* w = FindInitializer(n.weights[0]);
        costs[n.id] = 2.0 * elems * static_cast<double>(w->shape().dim(1));
        break;
      }
      case OpType::kMaxPool:
      case OpType::kAvgPool: {
        double k = static_cast<double>(n.attrs.GetInt("kernel", 2));
        costs[n.id] = elems * k * k;
        break;
      }
      case OpType::kBatchNorm:
        costs[n.id] = 2.0 * elems;
        break;
      case OpType::kInput:
        costs[n.id] = 0.0;
        break;
      default:
        costs[n.id] = elems;
        break;
    }
  }
  return costs;
}

size_t Graph::ParameterBytes() const {
  size_t total = 0;
  for (const auto& [name, t] : initializers_) total += t.byte_size();
  return total;
}

size_t Graph::DropUnusedInitializers() {
  MVTEE_CHECK(!initializers_frozen_);
  std::set<std::string> used;
  for (const Node& n : nodes_) {
    for (const auto& w : n.weights) used.insert(w);
  }
  size_t removed = 0;
  for (auto it = initializers_.begin(); it != initializers_.end();) {
    if (!used.count(it->first)) {
      it = initializers_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

// ------------------------------------------------------------- serialization

namespace {
constexpr uint32_t kGraphMagic = 0x4d564752;  // "MVGR"

void SerializeAttrs(util::Bytes& out, const Attributes& attrs) {
  util::AppendU32(out, static_cast<uint32_t>(attrs.raw().size()));
  for (const auto& [key, value] : attrs.raw()) {
    util::AppendLengthPrefixedStr(out, key);
    if (auto* i = std::get_if<int64_t>(&value)) {
      util::AppendU8(out, 0);
      util::AppendU64(out, static_cast<uint64_t>(*i));
    } else if (auto* f = std::get_if<float>(&value)) {
      util::AppendU8(out, 1);
      util::AppendF32(out, *f);
    } else {
      const auto& v = std::get<std::vector<int64_t>>(value);
      util::AppendU8(out, 2);
      util::AppendU32(out, static_cast<uint32_t>(v.size()));
      for (int64_t x : v) util::AppendU64(out, static_cast<uint64_t>(x));
    }
  }
}

bool DeserializeAttrs(util::ByteReader& reader, Attributes& attrs) {
  uint32_t count;
  if (!reader.ReadU32(count)) return false;
  for (uint32_t i = 0; i < count; ++i) {
    std::string key;
    uint8_t tag;
    if (!reader.ReadLengthPrefixedStr(key) || !reader.ReadU8(tag)) {
      return false;
    }
    if (tag == 0) {
      uint64_t v;
      if (!reader.ReadU64(v)) return false;
      attrs.SetInt(key, static_cast<int64_t>(v));
    } else if (tag == 1) {
      float v;
      if (!reader.ReadF32(v)) return false;
      attrs.SetFloat(key, v);
    } else if (tag == 2) {
      uint32_t n;
      if (!reader.ReadU32(n)) return false;
      std::vector<int64_t> v(n);
      for (auto& x : v) {
        uint64_t u;
        if (!reader.ReadU64(u)) return false;
        x = static_cast<int64_t>(u);
      }
      attrs.SetInts(key, std::move(v));
    } else {
      return false;
    }
  }
  return true;
}
}  // namespace

util::Bytes Graph::Serialize() const {
  util::Bytes out;
  util::AppendU32(out, kGraphMagic);
  util::AppendU32(out, static_cast<uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    util::AppendLengthPrefixedStr(out, n.name);
    util::AppendU8(out, static_cast<uint8_t>(n.op));
    util::AppendU32(out, static_cast<uint32_t>(n.inputs.size()));
    for (NodeId in : n.inputs) util::AppendU32(out, static_cast<uint32_t>(in));
    util::AppendU32(out, static_cast<uint32_t>(n.weights.size()));
    for (const auto& w : n.weights) util::AppendLengthPrefixedStr(out, w);
    SerializeAttrs(out, n.attrs);
  }
  util::AppendU32(out, static_cast<uint32_t>(inputs_.size()));
  for (NodeId id : inputs_) {
    util::AppendU32(out, static_cast<uint32_t>(id));
    const Shape& s = input_shape(id);
    util::AppendU32(out, static_cast<uint32_t>(s.rank()));
    for (int64_t d : s.dims()) util::AppendU64(out, static_cast<uint64_t>(d));
  }
  util::AppendU32(out, static_cast<uint32_t>(outputs_.size()));
  for (NodeId id : outputs_) util::AppendU32(out, static_cast<uint32_t>(id));
  util::AppendU32(out, static_cast<uint32_t>(initializers_.size()));
  for (const auto& [name, t] : initializers_) {
    util::AppendLengthPrefixedStr(out, name);
    util::AppendLengthPrefixed(out, t.Serialize());
  }
  return out;
}

util::Result<Graph> Graph::Deserialize(util::ByteSpan data) {
  util::ByteReader reader(data);
  uint32_t magic;
  if (!reader.ReadU32(magic) || magic != kGraphMagic) {
    return util::InvalidArgument("bad graph magic");
  }
  Graph g;
  uint32_t node_count;
  if (!reader.ReadU32(node_count)) {
    return util::InvalidArgument("truncated node count");
  }
  g.nodes_.reserve(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    Node n;
    n.id = static_cast<NodeId>(i);
    uint8_t op;
    uint32_t in_count, w_count;
    if (!reader.ReadLengthPrefixedStr(n.name) || !reader.ReadU8(op) ||
        !reader.ReadU32(in_count)) {
      return util::InvalidArgument("truncated node header");
    }
    if (op > static_cast<uint8_t>(OpType::kReshape)) {
      return util::InvalidArgument("unknown op type");
    }
    n.op = static_cast<OpType>(op);
    n.inputs.resize(in_count);
    for (auto& in : n.inputs) {
      uint32_t v;
      if (!reader.ReadU32(v)) return util::InvalidArgument("truncated edge");
      if (v >= i) return util::InvalidArgument("non-topological edge");
      in = static_cast<NodeId>(v);
    }
    if (!reader.ReadU32(w_count)) {
      return util::InvalidArgument("truncated weight count");
    }
    n.weights.resize(w_count);
    for (auto& w : n.weights) {
      if (!reader.ReadLengthPrefixedStr(w)) {
        return util::InvalidArgument("truncated weight name");
      }
    }
    if (!DeserializeAttrs(reader, n.attrs)) {
      return util::InvalidArgument("truncated attrs");
    }
    g.nodes_.push_back(std::move(n));
  }

  uint32_t input_count;
  if (!reader.ReadU32(input_count)) {
    return util::InvalidArgument("truncated input count");
  }
  for (uint32_t i = 0; i < input_count; ++i) {
    uint32_t id, rank;
    if (!reader.ReadU32(id) || !reader.ReadU32(rank) || rank > 8) {
      return util::InvalidArgument("truncated input");
    }
    if (id >= node_count) return util::InvalidArgument("input id range");
    std::vector<int64_t> dims(rank);
    for (auto& d : dims) {
      uint64_t v;
      if (!reader.ReadU64(v)) return util::InvalidArgument("truncated shape");
      d = static_cast<int64_t>(v);
    }
    g.inputs_.push_back(static_cast<NodeId>(id));
    g.input_shapes_[static_cast<NodeId>(id)] = Shape(std::move(dims));
  }

  uint32_t output_count;
  if (!reader.ReadU32(output_count)) {
    return util::InvalidArgument("truncated output count");
  }
  for (uint32_t i = 0; i < output_count; ++i) {
    uint32_t id;
    if (!reader.ReadU32(id) || id >= node_count) {
      return util::InvalidArgument("bad output id");
    }
    g.outputs_.push_back(static_cast<NodeId>(id));
  }

  uint32_t init_count;
  if (!reader.ReadU32(init_count)) {
    return util::InvalidArgument("truncated initializer count");
  }
  for (uint32_t i = 0; i < init_count; ++i) {
    std::string name;
    util::Bytes payload;
    if (!reader.ReadLengthPrefixedStr(name) ||
        !reader.ReadLengthPrefixed(payload)) {
      return util::InvalidArgument("truncated initializer");
    }
    MVTEE_ASSIGN_OR_RETURN(Tensor t, Tensor::Deserialize(payload));
    g.initializers_[name] = std::move(t);
  }
  MVTEE_RETURN_IF_ERROR(g.Validate());
  return g;
}

}  // namespace mvtee::graph
