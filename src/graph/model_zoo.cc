#include "graph/model_zoo.h"

#include <algorithm>
#include <cmath>

#include "graph/builder.h"

namespace mvtee::graph {

namespace {

using tensor::Shape;

// Channel scaling: multiples of 8, minimum 8 (keeps SE reductions and
// grouped convs integral).
int64_t ScaleC(int64_t base, double mult) {
  int64_t c = static_cast<int64_t>(std::llround(base * mult / 8.0)) * 8;
  return std::max<int64_t>(8, c);
}

int64_t ScaleD(int64_t repeats, double mult) {
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(
                                  static_cast<double>(repeats) * mult)));
}

// ------------------------------------------------------------------ ResNet

NodeId ResNetBottleneck(ModelBuilder& b, NodeId x, int64_t mid_channels,
                        int64_t stride) {
  const int64_t out_channels = mid_channels * 4;
  NodeId shortcut = x;
  if (stride != 1 || b.ChannelsOf(x) != out_channels) {
    shortcut = b.BatchNorm(b.Conv(x, out_channels, 1, stride, 0));
  }
  NodeId y = b.ConvBnRelu(x, mid_channels, 1, 1, 0);
  y = b.ConvBnRelu(y, mid_channels, 3, stride, 1);
  y = b.BatchNorm(b.Conv(y, out_channels, 1, 1, 0));
  return b.Relu(b.Add(y, shortcut));
}

Graph BuildResNet(const ZooConfig& cfg, const std::vector<int64_t>& depths) {
  ModelBuilder b(cfg.seed);
  NodeId x = b.Input("image",
                     Shape({cfg.batch, 3, cfg.input_hw, cfg.input_hw}));
  x = b.ConvBnRelu(x, ScaleC(64, cfg.width_mult), 7, 2, 3);
  x = b.MaxPool(x, 3, 2, 1);

  const int64_t stage_channels[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    int64_t mid = ScaleC(stage_channels[stage], cfg.width_mult);
    int64_t repeats = ScaleD(depths[stage], cfg.depth_mult);
    for (int64_t i = 0; i < repeats; ++i) {
      int64_t stride = (i == 0 && stage > 0) ? 2 : 1;
      x = ResNetBottleneck(b, x, mid, stride);
    }
  }
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, cfg.num_classes);
  x = b.Softmax(x);
  b.MarkOutput(x);
  return b.Build();
}

// --------------------------------------------------------------- GoogleNet

NodeId InceptionV1Module(ModelBuilder& b, NodeId x, int64_t c1, int64_t c3r,
                         int64_t c3, int64_t c5r, int64_t c5, int64_t pp) {
  NodeId b1 = b.ConvBnRelu(x, c1, 1, 1, 0);
  NodeId b2 = b.ConvBnRelu(b.ConvBnRelu(x, c3r, 1, 1, 0), c3, 3, 1, 1);
  NodeId b3 = b.ConvBnRelu(b.ConvBnRelu(x, c5r, 1, 1, 0), c5, 5, 1, 2);
  NodeId b4 = b.ConvBnRelu(b.MaxPool(x, 3, 1, 1), pp, 1, 1, 0);
  return b.Concat({b1, b2, b3, b4});
}

Graph BuildGoogleNet(const ZooConfig& cfg) {
  ModelBuilder b(cfg.seed);
  auto C = [&](int64_t base) { return ScaleC(base, cfg.width_mult); };
  NodeId x = b.Input("image",
                     Shape({cfg.batch, 3, cfg.input_hw, cfg.input_hw}));
  x = b.ConvBnRelu(x, C(64), 7, 2, 3);
  x = b.MaxPool(x, 3, 2, 1);
  x = b.ConvBnRelu(x, C(64), 1, 1, 0);
  x = b.ConvBnRelu(x, C(192), 3, 1, 1);
  x = b.MaxPool(x, 3, 2, 1);
  // Inception 3a, 3b.
  x = InceptionV1Module(b, x, C(64), C(96), C(128), C(16), C(32), C(32));
  x = InceptionV1Module(b, x, C(128), C(128), C(192), C(32), C(96), C(64));
  x = b.MaxPool(x, 3, 2, 1);
  // Inception 4a..4e.
  x = InceptionV1Module(b, x, C(192), C(96), C(208), C(16), C(48), C(64));
  x = InceptionV1Module(b, x, C(160), C(112), C(224), C(24), C(64), C(64));
  x = InceptionV1Module(b, x, C(128), C(128), C(256), C(24), C(64), C(64));
  x = InceptionV1Module(b, x, C(112), C(144), C(288), C(32), C(64), C(64));
  x = InceptionV1Module(b, x, C(256), C(160), C(320), C(32), C(128), C(128));
  x = b.MaxPool(x, 3, 2, 1);
  // Inception 5a, 5b.
  x = InceptionV1Module(b, x, C(256), C(160), C(320), C(32), C(128), C(128));
  x = InceptionV1Module(b, x, C(384), C(192), C(384), C(48), C(128), C(128));
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, cfg.num_classes);
  x = b.Softmax(x);
  b.MarkOutput(x);
  return b.Build();
}

// -------------------------------------------------------------- InceptionV3

NodeId InceptionV3ModuleA(ModelBuilder& b, NodeId x, int64_t pool_ch,
                          double wm) {
  auto C = [&](int64_t base) { return ScaleC(base, wm); };
  NodeId b1 = b.ConvBnRelu(x, C(64), 1, 1, 0);
  NodeId b2 = b.ConvBnRelu(b.ConvBnRelu(x, C(48), 1, 1, 0), C(64), 5, 1, 2);
  NodeId b3 = b.ConvBnRelu(
      b.ConvBnRelu(b.ConvBnRelu(x, C(64), 1, 1, 0), C(96), 3, 1, 1), C(96), 3,
      1, 1);
  NodeId b4 = b.ConvBnRelu(b.AvgPool(x, 3, 1, 1), pool_ch, 1, 1, 0);
  return b.Concat({b1, b2, b3, b4});
}

// Factorized 7x7 branch (approximated with 1x3+3x1 pairs at small scale —
// the structural point is asymmetric factorization, retained here via
// sequenced 3x3 convs plus 1x1 mixes).
NodeId InceptionV3ModuleB(ModelBuilder& b, NodeId x, int64_t mid, double wm) {
  auto C = [&](int64_t base) { return ScaleC(base, wm); };
  NodeId b1 = b.ConvBnRelu(x, C(192), 1, 1, 0);
  NodeId b2 = b.ConvBnRelu(
      b.ConvBnRelu(b.ConvBnRelu(x, mid, 1, 1, 0), mid, 3, 1, 1), C(192), 1, 1,
      0);
  NodeId b3 = b.ConvBnRelu(
      b.ConvBnRelu(
          b.ConvBnRelu(b.ConvBnRelu(x, mid, 1, 1, 0), mid, 3, 1, 1), mid, 3, 1,
          1),
      C(192), 1, 1, 0);
  NodeId b4 = b.ConvBnRelu(b.AvgPool(x, 3, 1, 1), C(192), 1, 1, 0);
  return b.Concat({b1, b2, b3, b4});
}

NodeId InceptionV3ModuleC(ModelBuilder& b, NodeId x, double wm) {
  auto C = [&](int64_t base) { return ScaleC(base, wm); };
  NodeId b1 = b.ConvBnRelu(x, C(320), 1, 1, 0);
  NodeId b2a = b.ConvBnRelu(x, C(384), 1, 1, 0);
  NodeId b2 = b.Concat({b.ConvBnRelu(b2a, C(192), 3, 1, 1),
                        b.ConvBnRelu(b2a, C(192), 3, 1, 1)});
  NodeId b3a = b.ConvBnRelu(b.ConvBnRelu(x, C(448), 1, 1, 0), C(384), 3, 1, 1);
  NodeId b3 = b.Concat({b.ConvBnRelu(b3a, C(192), 3, 1, 1),
                        b.ConvBnRelu(b3a, C(192), 3, 1, 1)});
  NodeId b4 = b.ConvBnRelu(b.AvgPool(x, 3, 1, 1), C(192), 1, 1, 0);
  return b.Concat({b1, b2, b3, b4});
}

Graph BuildInceptionV3(const ZooConfig& cfg) {
  ModelBuilder b(cfg.seed);
  auto C = [&](int64_t base) { return ScaleC(base, cfg.width_mult); };
  NodeId x = b.Input("image",
                     Shape({cfg.batch, 3, cfg.input_hw, cfg.input_hw}));
  x = b.ConvBnRelu(x, C(32), 3, 2, 1);
  x = b.ConvBnRelu(x, C(32), 3, 1, 1);
  x = b.ConvBnRelu(x, C(64), 3, 1, 1);
  x = b.MaxPool(x, 3, 2, 1);
  x = b.ConvBnRelu(x, C(80), 1, 1, 0);
  x = b.ConvBnRelu(x, C(192), 3, 1, 1);
  x = b.MaxPool(x, 3, 2, 1);
  // 3x module A.
  x = InceptionV3ModuleA(b, x, C(32), cfg.width_mult);
  x = InceptionV3ModuleA(b, x, C(64), cfg.width_mult);
  x = InceptionV3ModuleA(b, x, C(64), cfg.width_mult);
  // Grid reduction.
  {
    NodeId r1 = b.ConvBnRelu(x, C(384), 3, 2, 1);
    NodeId r2 = b.ConvBnRelu(
        b.ConvBnRelu(b.ConvBnRelu(x, C(64), 1, 1, 0), C(96), 3, 1, 1), C(96),
        3, 2, 1);
    NodeId r3 = b.MaxPool(x, 3, 2, 1);
    x = b.Concat({r1, r2, r3});
  }
  // 4x module B.
  x = InceptionV3ModuleB(b, x, C(128), cfg.width_mult);
  x = InceptionV3ModuleB(b, x, C(160), cfg.width_mult);
  x = InceptionV3ModuleB(b, x, C(160), cfg.width_mult);
  x = InceptionV3ModuleB(b, x, C(192), cfg.width_mult);
  // Grid reduction.
  {
    NodeId r1 = b.ConvBnRelu(b.ConvBnRelu(x, C(192), 1, 1, 0), C(320), 3, 2, 1);
    NodeId r2 = b.ConvBnRelu(
        b.ConvBnRelu(b.ConvBnRelu(x, C(192), 1, 1, 0), C(192), 3, 1, 1),
        C(192), 3, 2, 1);
    NodeId r3 = b.MaxPool(x, 3, 2, 1);
    x = b.Concat({r1, r2, r3});
  }
  // 2x module C.
  x = InceptionV3ModuleC(b, x, cfg.width_mult);
  x = InceptionV3ModuleC(b, x, cfg.width_mult);
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, cfg.num_classes);
  x = b.Softmax(x);
  b.MarkOutput(x);
  return b.Build();
}

// --------------------------------------------- MobileNet/MnasNet/EfficientNet

// Inverted-residual (MBConv) block: 1x1 expand -> depthwise kxk ->
// optional SE -> 1x1 project, residual when stride 1 and shapes match.
NodeId MBConv(ModelBuilder& b, NodeId x, int64_t out_channels, int64_t kernel,
              int64_t stride, int64_t expand_ratio, bool use_se,
              bool use_hswish) {
  int64_t in_channels = b.ChannelsOf(x);
  NodeId y = x;
  int64_t expanded = in_channels * expand_ratio;
  auto act = [&](NodeId v) { return use_hswish ? b.HardSwish(v) : b.Relu6(v); };
  if (expand_ratio != 1) {
    y = act(b.BatchNorm(b.Conv(y, expanded, 1, 1, 0)));
  }
  y = act(b.BatchNorm(
      b.Conv(y, expanded, kernel, stride, kernel / 2, /*groups=*/expanded)));
  if (use_se) y = b.SqueezeExcite(y, 4);
  y = b.BatchNorm(b.Conv(y, out_channels, 1, 1, 0));
  if (stride == 1 && in_channels == out_channels) y = b.Add(y, x);
  return y;
}

Graph BuildMobileNetV3(const ZooConfig& cfg) {
  ModelBuilder b(cfg.seed);
  auto C = [&](int64_t base) { return ScaleC(base, cfg.width_mult); };
  NodeId x = b.Input("image",
                     Shape({cfg.batch, 3, cfg.input_hw, cfg.input_hw}));
  x = b.HardSwish(b.BatchNorm(b.Conv(x, C(16), 3, 2, 1)));
  // (out, kernel, stride, expand, se, hswish) — MobileNetV3-Large layout.
  struct Spec {
    int64_t out, k, s, e;
    bool se, hs;
  };
  const Spec specs[] = {
      {16, 3, 1, 1, false, false},  {24, 3, 2, 4, false, false},
      {24, 3, 1, 3, false, false},  {40, 5, 2, 3, true, false},
      {40, 5, 1, 3, true, false},   {40, 5, 1, 3, true, false},
      {80, 3, 2, 6, false, true},   {80, 3, 1, 2, false, true},
      {80, 3, 1, 2, false, true},   {112, 3, 1, 6, true, true},
      {112, 3, 1, 6, true, true},   {160, 5, 2, 6, true, true},
      {160, 5, 1, 6, true, true},   {160, 5, 1, 6, true, true},
  };
  for (const Spec& s : specs) {
    x = MBConv(b, x, C(s.out), s.k, s.s, s.e, s.se, s.hs);
  }
  x = b.HardSwish(b.BatchNorm(b.Conv(x, C(960), 1, 1, 0)));
  x = b.GlobalAvgPool(x);
  x = b.HardSwish(b.Conv(x, C(1280), 1, 1, 0, 1, true));
  x = b.Flatten(x);
  x = b.Gemm(x, cfg.num_classes);
  x = b.Softmax(x);
  b.MarkOutput(x);
  return b.Build();
}

Graph BuildMnasNet(const ZooConfig& cfg) {
  ModelBuilder b(cfg.seed);
  auto C = [&](int64_t base) { return ScaleC(base, cfg.width_mult); };
  NodeId x = b.Input("image",
                     Shape({cfg.batch, 3, cfg.input_hw, cfg.input_hw}));
  x = b.Relu6(b.BatchNorm(b.Conv(x, C(32), 3, 2, 1)));
  // Depthwise separable stem block.
  x = b.Relu6(b.BatchNorm(b.Conv(x, C(32), 3, 1, 1, C(32))));
  x = b.BatchNorm(b.Conv(x, C(16), 1, 1, 0));
  // MnasNet-A1 stages: (out, kernel, stride, expand, repeats, se).
  struct Stage {
    int64_t out, k, s, e, r;
    bool se;
  };
  const Stage stages[] = {
      {24, 3, 2, 6, 2, false}, {40, 5, 2, 3, 3, true},
      {80, 3, 2, 6, 4, false}, {112, 3, 1, 6, 2, true},
      {160, 5, 2, 6, 3, true}, {320, 3, 1, 6, 1, false},
  };
  for (const Stage& st : stages) {
    int64_t repeats = ScaleD(st.r, cfg.depth_mult);
    for (int64_t i = 0; i < repeats; ++i) {
      x = MBConv(b, x, C(st.out), st.k, i == 0 ? st.s : 1, st.e, st.se,
                 /*use_hswish=*/false);
    }
  }
  x = b.Relu6(b.BatchNorm(b.Conv(x, C(1280), 1, 1, 0)));
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, cfg.num_classes);
  x = b.Softmax(x);
  b.MarkOutput(x);
  return b.Build();
}

Graph BuildEfficientNetB7(const ZooConfig& cfg) {
  ModelBuilder b(cfg.seed);
  auto C = [&](int64_t base) { return ScaleC(base, cfg.width_mult); };
  NodeId x = b.Input("image",
                     Shape({cfg.batch, 3, cfg.input_hw, cfg.input_hw}));
  x = b.HardSwish(b.BatchNorm(b.Conv(x, C(64), 3, 2, 1)));
  // EfficientNet-B7 stage layout (width 2.0 / depth 3.1 applied to the B0
  // skeleton, then re-scaled by cfg): (out, kernel, stride, expand,
  // base_repeats).
  struct Stage {
    int64_t out, k, s, e, r;
  };
  const Stage stages[] = {
      {32, 3, 1, 1, 4},  {48, 3, 2, 6, 7},   {80, 5, 2, 6, 7},
      {160, 3, 2, 6, 10}, {224, 5, 1, 6, 10}, {384, 5, 2, 6, 13},
      {640, 3, 1, 6, 4},
  };
  for (const Stage& st : stages) {
    // B7 is deep; apply a stronger reduction so the suite stays tractable
    // while B7 remains by far the deepest model in the zoo.
    int64_t repeats = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(st.r * cfg.depth_mult * 0.6)));
    for (int64_t i = 0; i < repeats; ++i) {
      x = MBConv(b, x, C(st.out), st.k, i == 0 ? st.s : 1, st.e,
                 /*use_se=*/true, /*use_hswish=*/true);
    }
  }
  x = b.HardSwish(b.BatchNorm(b.Conv(x, C(2560), 1, 1, 0)));
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Gemm(x, cfg.num_classes);
  x = b.Softmax(x);
  b.MarkOutput(x);
  return b.Build();
}

}  // namespace

std::string_view ModelName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kEfficientNetB7: return "efficientnet-b7";
    case ModelKind::kGoogleNet: return "googlenet";
    case ModelKind::kInceptionV3: return "inception-v3";
    case ModelKind::kMnasNet: return "mnasnet";
    case ModelKind::kMobileNetV3: return "mobilenet-v3";
    case ModelKind::kResNet152: return "resnet-152";
    case ModelKind::kResNet50: return "resnet-50";
  }
  return "unknown";
}

std::vector<ModelKind> AllModels() {
  return {ModelKind::kEfficientNetB7, ModelKind::kGoogleNet,
          ModelKind::kInceptionV3,    ModelKind::kMnasNet,
          ModelKind::kMobileNetV3,    ModelKind::kResNet152,
          ModelKind::kResNet50};
}

Graph BuildModel(ModelKind kind, const ZooConfig& config) {
  switch (kind) {
    case ModelKind::kEfficientNetB7: return BuildEfficientNetB7(config);
    case ModelKind::kGoogleNet: return BuildGoogleNet(config);
    case ModelKind::kInceptionV3: return BuildInceptionV3(config);
    case ModelKind::kMnasNet: return BuildMnasNet(config);
    case ModelKind::kMobileNetV3: return BuildMobileNetV3(config);
    case ModelKind::kResNet152: return BuildResNet(config, {3, 8, 36, 3});
    case ModelKind::kResNet50: return BuildResNet(config, {3, 4, 6, 3});
  }
  MVTEE_CHECK(false);
  return Graph();
}

}  // namespace mvtee::graph
