// ONNX-like intermediate representation: a DAG of single-output operator
// nodes plus named initializers (weights).
//
// This IR plays the role ONNX plays in the paper: the common format the
// partitioner slices, the diversifier rewrites, and every inference
// runtime consumes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "tensor/tensor.h"
#include "util/bytes.h"
#include "util/status.h"

namespace mvtee::graph {

enum class OpType : uint8_t {
  kInput = 0,
  kConv2d,        // attrs: kernel_h/w, stride, padding, groups; weights: W[,b]
  kGemm,          // fully connected; weights: W [out,in] [, b]
  kRelu,
  kRelu6,         // clip(0, 6)
  kSigmoid,
  kHardSwish,     // x * relu6(x+3)/6
  kTanh,
  kMaxPool,       // attrs: kernel, stride, padding
  kAvgPool,       // attrs: kernel, stride, padding
  kGlobalAvgPool, // output [N,C,1,1]
  kBatchNorm,     // weights: scale, bias, mean, var; attr: epsilon
  kAdd,           // elementwise (equal shapes)
  kMul,           // elementwise with [N,C,1,1] broadcast on rhs
  kConcat,        // attr: axis (channel concat)
  kFlatten,       // [N, ...] -> [N, rest]
  kSoftmax,       // last axis
  kIdentity,
  kScale,         // y = x * alpha + beta (attrs); used by diversification
  kReshape,       // attr "dims": target shape (same element count)
};

std::string_view OpTypeName(OpType op);

// Attribute value: int64, float, or int64 list.
using AttrValue = std::variant<int64_t, float, std::vector<int64_t>>;

class Attributes {
 public:
  void SetInt(const std::string& key, int64_t v) { attrs_[key] = v; }
  void SetFloat(const std::string& key, float v) { attrs_[key] = v; }
  void SetInts(const std::string& key, std::vector<int64_t> v) {
    attrs_[key] = std::move(v);
  }

  int64_t GetInt(const std::string& key, int64_t def = 0) const;
  float GetFloat(const std::string& key, float def = 0.0f) const;
  std::vector<int64_t> GetInts(const std::string& key) const;
  bool Has(const std::string& key) const { return attrs_.count(key) > 0; }

  const std::map<std::string, AttrValue>& raw() const { return attrs_; }
  std::map<std::string, AttrValue>& raw() { return attrs_; }

  friend bool operator==(const Attributes& a, const Attributes& b) {
    return a.attrs_ == b.attrs_;
  }

 private:
  std::map<std::string, AttrValue> attrs_;
};

// NodeId indexes Graph::nodes(). Dead nodes (after rewrites) keep their
// slot with op=kIdentity and no consumers until Compact() is called.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

struct Node {
  NodeId id = kInvalidNode;
  std::string name;
  OpType op = OpType::kIdentity;
  std::vector<NodeId> inputs;            // producing nodes, in order
  std::vector<std::string> weights;      // initializer names, op-specific order
  Attributes attrs;
};

class Graph {
 public:
  Graph() = default;
  // Copying yields a fresh, mutable graph: freezing marks the weight
  // set of one specific instance immutable (a PackedWeightCache aliases
  // its bytes), and a value copy shares no such aliases. Moves carry
  // the frozen state with the instance.
  Graph(const Graph& other)
      : nodes_(other.nodes_),
        inputs_(other.inputs_),
        outputs_(other.outputs_),
        initializers_(other.initializers_),
        input_shapes_(other.input_shapes_) {}
  Graph& operator=(const Graph& other) {
    if (this != &other) {
      nodes_ = other.nodes_;
      inputs_ = other.inputs_;
      outputs_ = other.outputs_;
      initializers_ = other.initializers_;
      input_shapes_ = other.input_shapes_;
      initializers_frozen_ = false;
    }
    return *this;
  }
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // --- construction ---
  NodeId AddInput(const std::string& name, tensor::Shape shape);
  NodeId AddNode(const std::string& name, OpType op,
                 std::vector<NodeId> inputs,
                 std::vector<std::string> weights = {},
                 Attributes attrs = {});
  void AddInitializer(const std::string& name, tensor::Tensor value);
  void MarkOutput(NodeId id);
  void ClearOutputs() { outputs_.clear(); }

  // --- accessors ---
  const std::vector<Node>& nodes() const { return nodes_; }
  Node& node(NodeId id) { return nodes_[static_cast<size_t>(id)]; }
  const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  const std::map<std::string, tensor::Tensor>& initializers() const {
    return initializers_;
  }
  const tensor::Tensor* FindInitializer(const std::string& name) const;
  // Aborts once FreezeInitializers() has been called (as do
  // AddInitializer/DropUnusedInitializers): frozen weights back packed
  // caches by pointer, so any later mutation would serve stale bytes.
  tensor::Tensor* MutableInitializer(const std::string& name);

  // Marks the weight set immutable for the rest of this instance's
  // life. Executors freeze their private copy after all graph passes
  // (BN folding) have run and before the PackedWeightCache binds.
  void FreezeInitializers() { initializers_frozen_ = true; }
  bool initializers_frozen() const { return initializers_frozen_; }
  const tensor::Shape& input_shape(NodeId id) const;

  // Consumers of each node (recomputed on demand after mutation).
  std::vector<std::vector<NodeId>> BuildConsumers() const;

  // Nodes in a valid topological order. Graph construction is append-
  // only with inputs preceding consumers, so this is just 0..n-1 —
  // rewrites must preserve the invariant (they only insert after).
  std::vector<NodeId> TopologicalOrder() const;

  // --- validation & analysis ---
  util::Status Validate() const;

  // Infers the output shape of every node; fails on inconsistent wiring.
  util::Result<std::vector<tensor::Shape>> InferShapes() const;

  // Rough FLOP estimate per node (for balanced partitioning weights).
  std::vector<double> EstimateNodeCosts() const;

  // Total parameter bytes.
  size_t ParameterBytes() const;

  // Drops initializers no longer referenced by any node (rewrites may
  // orphan weights). Returns the number of initializers removed.
  size_t DropUnusedInitializers();

  // --- serialization ---
  util::Bytes Serialize() const;
  static util::Result<Graph> Deserialize(util::ByteSpan data);

 private:
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::map<std::string, tensor::Tensor> initializers_;
  std::map<NodeId, tensor::Shape> input_shapes_;
  bool initializers_frozen_ = false;
};

}  // namespace mvtee::graph
