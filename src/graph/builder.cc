#include "graph/builder.h"

#include <cmath>

namespace mvtee::graph {

using tensor::Shape;
using tensor::Tensor;

std::string ModelBuilder::NextName(const std::string& tag) {
  return tag + "_" + std::to_string(counter_++);
}

tensor::Shape ModelBuilder::ShapeOf(NodeId x) {
  if (static_cast<size_t>(g_.num_nodes()) != shape_cache_.size()) {
    auto shapes = g_.InferShapes();
    MVTEE_CHECK(shapes.ok());
    shape_cache_ = std::move(*shapes);
  }
  return shape_cache_[static_cast<size_t>(x)];
}

NodeId ModelBuilder::Unary(NodeId x, OpType op, const std::string& tag) {
  return g_.AddNode(NextName(tag), op, {x});
}

NodeId ModelBuilder::Conv(NodeId x, int64_t out_channels, int64_t kernel,
                          int64_t stride, int64_t padding, int64_t groups,
                          bool bias) {
  int64_t in_channels = ChannelsOf(x);
  MVTEE_CHECK(in_channels % groups == 0);
  MVTEE_CHECK(out_channels % groups == 0);
  std::string name = NextName("conv");
  float fan_in =
      static_cast<float>((in_channels / groups) * kernel * kernel);
  float stddev = std::sqrt(2.0f / fan_in);
  Tensor w = Tensor::RandomNormal(
      Shape({out_channels, in_channels / groups, kernel, kernel}), rng_,
      stddev);
  g_.AddInitializer(name + ".w", std::move(w));
  std::vector<std::string> weights = {name + ".w"};
  if (bias) {
    g_.AddInitializer(name + ".b",
                      Tensor::RandomNormal(Shape({out_channels}), rng_, 0.01f));
    weights.push_back(name + ".b");
  }
  Attributes attrs;
  attrs.SetInt("stride", stride);
  attrs.SetInt("padding", padding);
  attrs.SetInt("groups", groups);
  return g_.AddNode(name, OpType::kConv2d, {x}, std::move(weights),
                    std::move(attrs));
}

NodeId ModelBuilder::BatchNorm(NodeId x) {
  int64_t channels = ChannelsOf(x);
  std::string name = NextName("bn");
  // Inference-mode statistics: near-identity transform with mild variation
  // so BN is not a no-op but keeps activations well-scaled.
  Tensor scale(Shape({channels})), bias(Shape({channels})),
      mean(Shape({channels})), var(Shape({channels}));
  for (int64_t c = 0; c < channels; ++c) {
    scale.at(c) = 1.0f + rng_.UniformFloat(-0.1f, 0.1f);
    bias.at(c) = rng_.UniformFloat(-0.05f, 0.05f);
    mean.at(c) = rng_.UniformFloat(-0.05f, 0.05f);
    var.at(c) = 1.0f + rng_.UniformFloat(-0.1f, 0.1f);
  }
  g_.AddInitializer(name + ".scale", std::move(scale));
  g_.AddInitializer(name + ".bias", std::move(bias));
  g_.AddInitializer(name + ".mean", std::move(mean));
  g_.AddInitializer(name + ".var", std::move(var));
  Attributes attrs;
  attrs.SetFloat("epsilon", 1e-5f);
  return g_.AddNode(
      name, OpType::kBatchNorm, {x},
      {name + ".scale", name + ".bias", name + ".mean", name + ".var"},
      std::move(attrs));
}

NodeId ModelBuilder::MaxPool(NodeId x, int64_t kernel, int64_t stride,
                             int64_t padding) {
  Attributes attrs;
  attrs.SetInt("kernel", kernel);
  attrs.SetInt("stride", stride);
  attrs.SetInt("padding", padding);
  return g_.AddNode(NextName("maxpool"), OpType::kMaxPool, {x}, {},
                    std::move(attrs));
}

NodeId ModelBuilder::AvgPool(NodeId x, int64_t kernel, int64_t stride,
                             int64_t padding) {
  Attributes attrs;
  attrs.SetInt("kernel", kernel);
  attrs.SetInt("stride", stride);
  attrs.SetInt("padding", padding);
  return g_.AddNode(NextName("avgpool"), OpType::kAvgPool, {x}, {},
                    std::move(attrs));
}

NodeId ModelBuilder::GlobalAvgPool(NodeId x) {
  return g_.AddNode(NextName("gap"), OpType::kGlobalAvgPool, {x});
}

NodeId ModelBuilder::Add(NodeId a, NodeId b) {
  return g_.AddNode(NextName("add"), OpType::kAdd, {a, b});
}

NodeId ModelBuilder::Mul(NodeId a, NodeId b) {
  return g_.AddNode(NextName("mul"), OpType::kMul, {a, b});
}

NodeId ModelBuilder::Concat(std::vector<NodeId> xs) {
  Attributes attrs;
  attrs.SetInt("axis", 1);
  return g_.AddNode(NextName("concat"), OpType::kConcat, std::move(xs), {},
                    std::move(attrs));
}

NodeId ModelBuilder::Flatten(NodeId x) {
  return g_.AddNode(NextName("flatten"), OpType::kFlatten, {x});
}

NodeId ModelBuilder::Gemm(NodeId x, int64_t out_features, bool bias) {
  int64_t in_features = ShapeOf(x).dim(1);
  std::string name = NextName("fc");
  float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  g_.AddInitializer(
      name + ".w",
      Tensor::RandomNormal(Shape({out_features, in_features}), rng_, stddev));
  std::vector<std::string> weights = {name + ".w"};
  if (bias) {
    g_.AddInitializer(
        name + ".b", Tensor::RandomNormal(Shape({out_features}), rng_, 0.01f));
    weights.push_back(name + ".b");
  }
  return g_.AddNode(name, OpType::kGemm, {x}, std::move(weights));
}

NodeId ModelBuilder::ConvBnRelu(NodeId x, int64_t out_channels, int64_t kernel,
                                int64_t stride, int64_t padding,
                                int64_t groups) {
  NodeId c = Conv(x, out_channels, kernel, stride, padding, groups);
  NodeId b = BatchNorm(c);
  return Relu(b);
}

NodeId ModelBuilder::SqueezeExcite(NodeId x, int64_t reduction) {
  int64_t channels = ChannelsOf(x);
  int64_t reduced = std::max<int64_t>(1, channels / reduction);
  NodeId pooled = GlobalAvgPool(x);
  NodeId squeeze = Conv(pooled, reduced, 1, 1, 0, 1, true);
  NodeId act = Relu(squeeze);
  NodeId expand = Conv(act, channels, 1, 1, 0, 1, true);
  NodeId gate = Sigmoid(expand);
  return Mul(x, gate);
}

Graph ModelBuilder::Build() {
  MVTEE_CHECK(g_.Validate().ok());
  return std::move(g_);
}

}  // namespace mvtee::graph
