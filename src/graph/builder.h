// Fluent graph construction with automatic synthetic-weight creation.
//
// The model zoo uses this to assemble structurally faithful versions of
// the paper's evaluation models with deterministic pseudo-random weights
// (He-style initialization so activations stay well-scaled through deep
// stacks — important because checkpoint metrics compare real numerics).
#pragma once

#include <string>

#include "graph/ir.h"
#include "util/rng.h"

namespace mvtee::graph {

class ModelBuilder {
 public:
  explicit ModelBuilder(uint64_t seed = 42) : rng_(seed) {}

  NodeId Input(const std::string& name, tensor::Shape shape) {
    return g_.AddInput(name, std::move(shape));
  }

  // Conv2d with optional bias; weight init: N(0, sqrt(2 / fan_in)).
  NodeId Conv(NodeId x, int64_t out_channels, int64_t kernel, int64_t stride,
              int64_t padding, int64_t groups = 1, bool bias = false);

  // Inference-mode batch norm with randomized (but stable) parameters.
  NodeId BatchNorm(NodeId x);

  NodeId Relu(NodeId x) { return Unary(x, OpType::kRelu, "relu"); }
  NodeId Relu6(NodeId x) { return Unary(x, OpType::kRelu6, "relu6"); }
  NodeId Sigmoid(NodeId x) { return Unary(x, OpType::kSigmoid, "sigmoid"); }
  NodeId HardSwish(NodeId x) { return Unary(x, OpType::kHardSwish, "hswish"); }
  NodeId Tanh(NodeId x) { return Unary(x, OpType::kTanh, "tanh"); }
  NodeId Softmax(NodeId x) { return Unary(x, OpType::kSoftmax, "softmax"); }
  NodeId Identity(NodeId x) { return Unary(x, OpType::kIdentity, "id"); }

  NodeId MaxPool(NodeId x, int64_t kernel, int64_t stride, int64_t padding = 0);
  NodeId AvgPool(NodeId x, int64_t kernel, int64_t stride, int64_t padding = 0);
  NodeId GlobalAvgPool(NodeId x);

  NodeId Add(NodeId a, NodeId b);
  NodeId Mul(NodeId a, NodeId b);
  NodeId Concat(std::vector<NodeId> xs);
  NodeId Flatten(NodeId x);
  NodeId Gemm(NodeId x, int64_t out_features, bool bias = true);

  // Composite blocks.
  NodeId ConvBnRelu(NodeId x, int64_t out_channels, int64_t kernel,
                    int64_t stride, int64_t padding, int64_t groups = 1);
  // Squeeze-and-excitation: GAP -> 1x1 conv reduce -> relu -> 1x1 conv
  // expand -> sigmoid -> channel-scale.
  NodeId SqueezeExcite(NodeId x, int64_t reduction = 4);

  // Current inferred output shape of `x` (aborts if graph is malformed —
  // builder misuse is a programmer error).
  tensor::Shape ShapeOf(NodeId x);
  int64_t ChannelsOf(NodeId x) { return ShapeOf(x).dim(1); }

  void MarkOutput(NodeId x) { g_.MarkOutput(x); }
  Graph Build();

  Graph& graph() { return g_; }

 private:
  NodeId Unary(NodeId x, OpType op, const std::string& tag);
  std::string NextName(const std::string& tag);

  Graph g_;
  util::Rng rng_;
  int counter_ = 0;
  // Cached shapes; invalidated when nodes are appended.
  std::vector<tensor::Shape> shape_cache_;
};

}  // namespace mvtee::graph
